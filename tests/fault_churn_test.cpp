// Unit + integration tests for the fault/churn subsystem: FaultPlan
// schedule generation, LinkState semantics, DynamicRouting's
// rebuild-only-on-membership-change contract, and the churn/lossy
// registry variants end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "app/scenario.hpp"
#include "app/scenario_registry.hpp"
#include "app/sweep.hpp"
#include "net/link_state.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "sim/fault_plan.hpp"

namespace bcp {
namespace {

// ------------------------------------------------------------ FaultPlan --

sim::FaultPlanSpec churn_spec(int crashes, int flaps = 0) {
  sim::FaultPlanSpec spec;
  spec.node_crashes = crashes;
  spec.link_flaps = flaps;
  spec.seed = 7;
  return spec;
}

TEST(FaultPlan, DeterministicAndSorted) {
  const sim::FaultPlan a(churn_spec(5), 36, 0, 1000.0);
  const sim::FaultPlan b(churn_spec(5), 36, 0, 1000.0);
  ASSERT_EQ(a.events().size(), 10u);  // crash + recover per victim
  ASSERT_EQ(b.events().size(), a.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
  }
  for (std::size_t i = 1; i < a.events().size(); ++i)
    EXPECT_LE(a.events()[i - 1].at, a.events()[i].at);
}

TEST(FaultPlan, SparesTheSinkAndRecoversEveryVictimInsideTheRun) {
  const double duration = 500.0;
  const sim::FaultPlan plan(churn_spec(10), 36, 5, duration);
  std::set<std::int32_t> crashed;
  std::set<std::int32_t> recovered;
  for (const auto& ev : plan.events()) {
    EXPECT_GT(ev.at, 0.0);
    EXPECT_LT(ev.at, duration);
    if (ev.kind == sim::FaultKind::kNodeCrash) {
      EXPECT_NE(ev.node, 5);  // the sink stays alive
      EXPECT_TRUE(crashed.insert(ev.node).second);  // distinct victims
    } else {
      ASSERT_EQ(ev.kind, sim::FaultKind::kNodeRecover);
      recovered.insert(ev.node);
    }
  }
  EXPECT_EQ(crashed.size(), 10u);
  EXPECT_EQ(crashed, recovered);
}

TEST(FaultPlan, LinkFlapsFollowTheAdjacency) {
  // A 4-node line: only 3 real links exist.
  const std::vector<std::vector<std::int32_t>> adjacency = {
      {1}, {0, 2}, {1, 3}, {2}};
  auto spec = churn_spec(0, 3);
  const sim::FaultPlan plan(spec, 4, 0, 800.0, &adjacency);
  std::set<std::pair<std::int32_t, std::int32_t>> flapped;
  for (const auto& ev : plan.events()) {
    ASSERT_TRUE(ev.kind == sim::FaultKind::kLinkDown ||
                ev.kind == sim::FaultKind::kLinkUp);
    const auto link = std::minmax(ev.node, ev.peer);
    EXPECT_EQ(std::abs(ev.node - ev.peer), 1) << "not a line link";
    flapped.insert(link);
  }
  EXPECT_EQ(flapped.size(), 3u);  // all distinct; only real links exist
}

TEST(FaultPlan, RejectsImpossibleAndInvalidSpecs) {
  EXPECT_THROW(sim::FaultPlan(churn_spec(36), 36, 0, 100.0),
               std::invalid_argument);  // only 35 non-sink nodes
  sim::FaultPlanSpec spec;
  spec.events.push_back({10.0, sim::FaultKind::kNodeCrash, 0, -1});
  EXPECT_THROW(sim::FaultPlan(spec, 36, 0, 100.0),
               std::invalid_argument);  // crashing the sink
  spec.events[0] = {10.0, sim::FaultKind::kNodeCrash, 99, -1};
  EXPECT_THROW(sim::FaultPlan(spec, 36, 0, 100.0),
               std::invalid_argument);  // out of range
}

// ------------------------------------------------------------ LinkState --

TEST(LinkState, NodeAndLinkSemantics) {
  net::LinkState links(4);
  EXPECT_TRUE(links.all_up());
  EXPECT_TRUE(links.link_up(0, 1));
  links.set_node_up(1, false);
  EXPECT_FALSE(links.all_up());
  EXPECT_FALSE(links.node_up(1));
  EXPECT_FALSE(links.link_up(0, 1));  // either endpoint down kills the link
  EXPECT_TRUE(links.link_up(0, 2));
  links.set_link_up(0, 2, false);
  EXPECT_FALSE(links.link_up(0, 2));
  EXPECT_FALSE(links.link_up(2, 0));  // unordered pair
  links.set_node_up(1, true);
  links.set_link_up(0, 2, true);
  EXPECT_TRUE(links.all_up());
}

TEST(LinkState, RevisionBumpsOnlyOnEffectiveChange) {
  net::LinkState links(4);
  const std::uint64_t r0 = links.revision();
  links.set_node_up(2, true);  // already up — no-op
  EXPECT_EQ(links.revision(), r0);
  links.set_node_up(2, false);
  EXPECT_EQ(links.revision(), r0 + 1);
  links.set_node_up(2, false);  // already down — no-op
  EXPECT_EQ(links.revision(), r0 + 1);
  links.set_link_up(0, 1, false);
  EXPECT_EQ(links.revision(), r0 + 2);
  links.set_link_up(1, 0, false);  // same pair, same state — no-op
  EXPECT_EQ(links.revision(), r0 + 2);
}

// ------------------------------------------------------- DynamicRouting --

TEST(DynamicRouting, RebuildsOnlyOnMembershipChange) {
  const net::Topology topo = net::Topology::grid(4, 120.0, 0);
  const net::ConnectivityGraph graph(topo.positions, 40.0);
  net::LinkState links(graph.node_count());
  const net::DynamicRouting routes(graph, topo.sink, links,
                                   /*all_pairs=*/false);
  for (int i = 0; i < 10; ++i) routes.next_hop(15, 0);
  EXPECT_EQ(routes.rebuild_count(), 1);  // first query built; the rest hit
  links.set_node_up(5, false);
  links.set_node_up(5, false);  // no-op: must not trigger another rebuild
  routes.next_hop(15, 0);
  routes.next_hop(14, 0);
  EXPECT_EQ(routes.rebuild_count(), 2);
}

TEST(DynamicRouting, RoutesAroundDownNodesAndHeals) {
  // 4-node line, spacing 40 m = range: the only path 3 -> 0 is through 2
  // and 1; taking 1 down strands 2 and 3.
  const net::ConnectivityGraph graph({{0, 0}, {40, 0}, {80, 0}, {120, 0}},
                                     41.0);
  net::LinkState links(4);
  const net::DynamicRouting routes(graph, 0, links, /*all_pairs=*/false);
  EXPECT_EQ(routes.next_hop(3, 0), 2);
  EXPECT_EQ(routes.hops(3, 0), 3);
  links.set_node_up(1, false);
  EXPECT_EQ(routes.next_hop(3, 0), net::kInvalidNode);
  EXPECT_EQ(routes.hops(2, 0), -1);
  links.set_node_up(1, true);
  EXPECT_EQ(routes.next_hop(3, 0), 2);
  EXPECT_EQ(routes.next_hop(1, 0), 0);
}

TEST(DynamicRouting, MatchesStaticProvidersWhileAllUp) {
  const net::Topology topo = net::Topology::grid(6, 200.0, 0);
  const net::ConnectivityGraph graph(topo.positions, 40.0);
  net::LinkState links(graph.node_count());
  const net::DynamicRouting dyn(graph, 0, links, /*all_pairs=*/true);
  const net::RoutingTable table(graph);
  for (net::NodeId from = 0; from < graph.node_count(); ++from) {
    EXPECT_EQ(dyn.next_hop(from, 0), table.next_hop(from, 0));
    EXPECT_EQ(dyn.hops(from, 0), table.hops(from, 0));
  }
}

// --------------------------------------------- registry variants, e2e ----

app::ScenarioConfig variant_config(const std::string& name, double duration,
                                   std::uint64_t seed) {
  const app::SweepPoint point(
      0, {{"senders", 5}, {"burst", 50}, {"duration", duration}});
  app::ScenarioConfig cfg =
      app::ScenarioRegistry::builtin().make(name, point);
  cfg.seed = seed;
  return cfg;
}

TEST(ChurnScenario, ChurnVariantsRunGreenAndCountFaults) {
  for (const char* name : {"churn-mh/dual", "churn-mh/sensor"}) {
    const auto m = app::run_scenario(variant_config(name, 300.0, 3));
    EXPECT_GT(m.generated, 0) << name;
    EXPECT_GT(m.delivered, 0) << name;
    EXPECT_GE(m.goodput, 0.0) << name;
    EXPECT_LE(m.goodput, 1.0) << name;
    EXPECT_EQ(m.fault_node_crashes, 4) << name;
    EXPECT_EQ(m.fault_node_recoveries, 4) << name;
    EXPECT_GT(m.route_rebuilds, 0) << name;
    // Channel conservation holds through crashes and recoveries.
    EXPECT_EQ(m.chan_rx_starts, m.chan_rx_ends + m.chan_rx_live_at_end)
        << name;
  }
}

TEST(ChurnScenario, LossyVariantsRunGreen) {
  for (const char* name : {"lossy-mh/dual", "lossy-mh/sensor"}) {
    const auto m = app::run_scenario(variant_config(name, 300.0, 3));
    EXPECT_GT(m.generated, 0) << name;
    EXPECT_GT(m.delivered, 0) << name;
    EXPECT_EQ(m.fault_node_crashes, 0) << name;
    EXPECT_EQ(m.chan_rx_starts, m.chan_rx_ends + m.chan_rx_live_at_end)
        << name;
  }
}

TEST(ChurnScenario, ChurnRunsAreDeterministic) {
  const auto a = app::run_scenario(variant_config("churn-mh/dual", 300.0, 9));
  const auto b = app::run_scenario(variant_config("churn-mh/dual", 300.0, 9));
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.fault_node_crashes, b.fault_node_crashes);
  EXPECT_DOUBLE_EQ(a.normalized_energy, b.normalized_energy);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST(ChurnScenario, ChurnReducesGoodputVersusStaticNetwork) {
  // Same workload with and without churn: crashing senders/relays must
  // not *increase* the delivered fraction. Only meaningful while the
  // static network is UNSATURATED — at the default 2 Kbps the mh/sensor
  // grid sits near 0.36 goodput, where killing a fifth of the nodes for
  // half the run is admission control and can raise the fraction
  // delivered for the survivors. At a tenth of that load delivery tracks
  // the offered traffic, so churn can only lose: the dead sender's own
  // node-down drops plus relay outages.
  auto cfg = variant_config("churn-mh/sensor", 400.0, 11);
  cfg.rate_bps = 200.0;
  cfg.faults.node_crashes = 8;
  cfg.faults.mean_downtime = 200.0;
  const auto churned = app::run_scenario(cfg);
  cfg.faults = sim::FaultPlanSpec{};
  cfg.faults.node_crashes = 0;
  const auto still = app::run_scenario(cfg);
  ASSERT_GT(still.delivered, 0);
  ASSERT_GT(still.goodput, 0.9) << "baseline must be unsaturated for the "
                                   "direction to be universal";
  EXPECT_GT(churned.fault_node_crashes, 0);
  EXPECT_GT(churned.dropped_node_down, 0);
  EXPECT_LE(churned.goodput, still.goodput);
}

TEST(ChurnScenario, DutyCycledModelRejectsFaultPlans) {
  auto cfg = app::ScenarioConfig::multi_hop(app::EvalModel::kWifiDutyCycled,
                                            3, 1);
  cfg.duration = 50.0;
  cfg.faults.node_crashes = 2;
  EXPECT_THROW(app::run_scenario(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace bcp

// Unit tests: sink-coordinated TDMA MAC — schedule construction, beacon
// sync, collision-free slotting, guard-vs-drift overlap, the missed-beacon
// rule, crash/recover teardown, and the MacSpec validation surface.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <vector>

#include "app/scenario.hpp"
#include "app/scenario_registry.hpp"
#include "energy/radio_model.hpp"
#include "mac/mac_spec.hpp"
#include "mac/tdma_mac.hpp"
#include "phy/channel.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"

namespace bcp::mac {
namespace {

using net::NodeId;

net::Message data_msg(NodeId src, NodeId dst, std::uint32_t seq = 1,
                      util::Bits bits = util::bytes(32)) {
  net::Message m;
  m.src = src;
  m.dst = dst;
  m.body = net::DataPacket{src, dst, seq, bits, 0.0};
  return m;
}

// ------------------------------------------------------------ the schedule

/// A 0 -- 1 -- 2 -- ... -- (n-1) chain; sink at node 0.
struct LineRouter final : net::Router {
  explicit LineRouter(int n) : n_(n) {}
  NodeId next_hop(NodeId from, NodeId to) const override {
    if (from == to) return from;
    return from > to ? from - 1 : from + 1;
  }
  int hops(NodeId from, NodeId to) const override {
    return std::abs(from - to);
  }
  int node_count() const override { return n_; }
  int n_;
};

TEST(TdmaSchedule, LineTreeWeightsAndWaveInterleave) {
  const LineRouter routes(4);
  const TdmaSchedule s = TdmaSchedule::from_tree(routes, 0, 4);
  EXPECT_EQ(s.coordinator, 0);
  // Subtree weights 3/2/1 for nodes 1/2/3 -> 6 slots total, waves ordered
  // deepest-first so every packet can cascade to the sink in one
  // superframe.
  EXPECT_EQ(s.slot_count, 6);
  EXPECT_TRUE(s.slots_of[0].empty());  // the sink only beacons
  EXPECT_EQ(s.slots_of[3], (std::vector<int>{0}));
  EXPECT_EQ(s.slots_of[2], (std::vector<int>{1, 3}));
  EXPECT_EQ(s.slots_of[1], (std::vector<int>{2, 4, 5}));
  // Interior nodes relay the beacon; the sink and the leaf do not.
  EXPECT_FALSE(s.relay[0]);
  EXPECT_TRUE(s.relay[1]);
  EXPECT_TRUE(s.relay[2]);
  EXPECT_FALSE(s.relay[3]);
}

TEST(TdmaSchedule, PureFunctionOfTheTree) {
  const LineRouter routes(6);
  const TdmaSchedule a = TdmaSchedule::from_tree(routes, 0, 6);
  const TdmaSchedule b = TdmaSchedule::from_tree(routes, 0, 6);
  EXPECT_EQ(a.slot_count, b.slot_count);
  EXPECT_EQ(a.slots_of, b.slots_of);
  EXPECT_EQ(a.relay, b.relay);
}

TEST(TdmaSchedule, EveryReachableNodeOwnsItsSubtreeSlots) {
  const LineRouter routes(5);
  const TdmaSchedule s = TdmaSchedule::from_tree(routes, 0, 5);
  // Chain of 4 senders: weights 4+3+2+1 = 10 slots; slot indices are a
  // permutation of 0..9 with no slot owned twice.
  EXPECT_EQ(s.slot_count, 10);
  std::vector<int> owners(10, -1);
  for (NodeId id = 0; id < 5; ++id)
    for (const int slot : s.slots_of[static_cast<std::size_t>(id)]) {
      ASSERT_GE(slot, 0);
      ASSERT_LT(slot, 10);
      EXPECT_EQ(owners[static_cast<std::size_t>(slot)], -1);
      owners[static_cast<std::size_t>(slot)] = id;
    }
  for (const int owner : owners) EXPECT_NE(owner, -1);
}

// ----------------------------------------------------------- the slot MAC

/// A single-hop star: sink (coordinator, node 0) plus `members` nodes, all
/// in mutual range — the worst case for contention, the natural case for
/// slotting. The hand-built schedule gives member i the single slot i-1.
struct Star {
  sim::Simulator sim;
  std::unique_ptr<phy::Channel> channel;
  std::vector<std::unique_ptr<phy::Radio>> radios;
  std::vector<std::unique_ptr<TdmaMac>> macs;
  TdmaSchedule schedule;
  TdmaParams params;
  std::vector<net::Message> sink_rx;

  void build(int members, TdmaParams base, std::uint64_t seed0 = 100) {
    std::vector<net::Position> pos{{0, 0}};
    for (int i = 1; i <= members; ++i)
      pos.push_back({static_cast<double>(i), 0});
    channel = std::make_unique<phy::Channel>(sim, std::move(pos), 45.0,
                                             phy::Channel::Params{0.0}, 7);
    schedule.coordinator = 0;
    schedule.slot_count = members;
    schedule.slots_of.assign(static_cast<std::size_t>(members) + 1, {});
    schedule.relay.assign(static_cast<std::size_t>(members) + 1, false);
    for (int i = 1; i <= members; ++i)
      schedule.slots_of[static_cast<std::size_t>(i)] = {i - 1};
    params = base.resolved_for(members, energy::micaz().rate);
    for (NodeId id = 0; id <= members; ++id) {
      radios.push_back(std::make_unique<phy::Radio>(
          sim, *channel, id, energy::micaz(), phy::OverhearMode::kNone,
          true));
      macs.push_back(std::make_unique<TdmaMac>(
          sim, *radios.back(), params, schedule,
          seed0 + static_cast<std::uint64_t>(id)));
    }
    macs[0]->set_rx_callback([this](const net::Message& m, NodeId) {
      sink_rx.push_back(m);
    });
  }
};

TEST(TdmaMac, StarBacklogDeliversCollisionFree) {
  Star star;
  star.build(4, tdma_sensor_params());
  for (NodeId m = 1; m <= 4; ++m)
    for (std::uint32_t i = 1; i <= 5; ++i)
      EXPECT_TRUE(star.macs[static_cast<std::size_t>(m)]->enqueue(
          data_msg(m, 0, i), 0));
  star.sim.run_until(5 * star.params.beacon_period);
  EXPECT_EQ(star.sink_rx.size(), 20u);
  for (NodeId m = 1; m <= 4; ++m) {
    const auto& stats = star.macs[static_cast<std::size_t>(m)]->stats();
    EXPECT_EQ(stats.tx_attempts, 5);
    EXPECT_EQ(stats.tx_success, 5);
    EXPECT_EQ(stats.tx_failed, 0);
    EXPECT_GT(stats.beacons_heard, 0);
  }
  // The schedule IS the collision control: a clean channel stays clean.
  EXPECT_EQ(star.channel->stats().deliveries_corrupt, 0);
}

TEST(TdmaMac, NoBeaconMeansNoTransmissions) {
  Star star;
  star.build(2, tdma_sensor_params());
  star.radios[0]->power_off();  // the coordinator never beacons
  star.macs[1]->enqueue(data_msg(1, 0), 0);
  star.sim.run_until(6 * star.params.beacon_period);
  EXPECT_EQ(star.channel->stats().frames, 0);
  EXPECT_EQ(star.macs[1]->stats().tx_attempts, 0);
  EXPECT_FALSE(star.macs[1]->synced());
  EXPECT_EQ(star.sink_rx.size(), 0u);
}

TEST(TdmaMac, MissedBeaconsSkipSlotsSilently) {
  Star star;
  star.build(1, tdma_sensor_params());
  const double P = star.params.beacon_period;
  for (std::uint32_t i = 1; i <= 200; ++i)
    star.macs[1]->enqueue(data_msg(1, 0, i), 0);
  // Beacons 0..2 go out, then the coordinator goes dark between
  // superframes. The member's sync (superframe 2) covers slots through
  // superframe 3; every later slot must pass silently.
  star.sim.schedule_at(2.5 * P, [&] { star.radios[0]->power_off(); });
  std::size_t delivered_at_sync_expiry = 0;
  std::int64_t frames_at_sync_expiry = 0;
  star.sim.schedule_at(4 * P, [&] {
    delivered_at_sync_expiry = star.sink_rx.size();
    frames_at_sync_expiry = star.channel->stats().frames;
  });
  star.sim.run_until(10 * P);
  EXPECT_FALSE(star.macs[1]->synced());
  EXPECT_GE(star.macs[1]->stats().slots_skipped_unsynced, 4);
  // Not a single frame after sync expired — skipped, not risked.
  EXPECT_GT(delivered_at_sync_expiry, 0u);
  EXPECT_EQ(star.sink_rx.size(), delivered_at_sync_expiry);
  EXPECT_EQ(star.channel->stats().frames, frames_at_sync_expiry);
}

TEST(TdmaMac, GuardAbsorbsDriftButOnlyUpToIt) {
  // Differential: same star, same backlog, the only change is the
  // guard/drift ratio. Drift-free slots never overlap; clocks drifting
  // far beyond the guard must produce collisions at the sink.
  const auto run_star = [](double sync_drift, util::Seconds guard) {
    Star star;
    TdmaParams p = tdma_sensor_params();
    p.sync_drift = sync_drift;
    p.guard = guard;
    star.build(4, p);
    for (NodeId m = 1; m <= 4; ++m)
      for (std::uint32_t i = 1; i <= 50; ++i)
        star.macs[static_cast<std::size_t>(m)]->enqueue(data_msg(m, 0, i),
                                                        0);
    star.sim.run_until(10 * star.params.beacon_period);
    return star.channel->stats().deliveries_corrupt;
  };
  EXPECT_EQ(run_star(0.0, util::milliseconds(1)), 0);
  EXPECT_GT(run_star(0.4, util::microseconds(50)), 0);
}

TEST(TdmaMac, CrashMidSlotLeavesNoStaleTimersAndRecovers) {
  Star star;
  star.build(2, tdma_sensor_params());
  const double P = star.params.beacon_period;
  for (std::uint32_t i = 1; i <= 50; ++i)
    star.macs[1]->enqueue(data_msg(1, 0, i), 0);
  // Member 1's first data window opens ~2.35 ms in; 5 ms is mid-slot,
  // mid-transmission. Crash = MAC teardown + radio dark, like the node
  // assemblies do it.
  std::size_t delivered_before_crash = 0;
  star.sim.schedule_at(0.005, [&] {
    star.macs[1]->reset_on_crash();
    star.radios[1]->force_off();
    delivered_before_crash = star.sink_rx.size();
  });
  // If a stale slot timer survived the crash it would fire into a dead
  // radio (or double-arm on recovery) within the next superframes.
  std::int64_t frames_while_down = -1;
  star.sim.schedule_at(4 * P, [&] {
    frames_while_down =
        star.channel->stats().frames;  // beacons only from here back
    star.radios[1]->power_on();
    star.macs[1]->on_recover();
  });
  star.sim.schedule_at(4 * P + 0.001, [&] {
    for (std::uint32_t i = 1; i <= 3; ++i)
      star.macs[1]->enqueue(data_msg(1, 0, 100 + i), 0);
  });
  star.sim.run_until(8 * P);

  const auto& stats = star.macs[1]->stats();
  EXPECT_EQ(stats.crash_resets, 1);
  // Everything not yet on the air at the crash was dropped silently...
  EXPECT_EQ(stats.crash_drops + stats.tx_success,
            50 + 3);  // ...and only the post-recovery refill transmitted.
  EXPECT_EQ(star.sink_rx.size(), delivered_before_crash + 3);
  // While down, the channel carried beacons but nothing from the member.
  EXPECT_EQ(stats.slots_skipped_unsynced, 0);
  EXPECT_GE(frames_while_down, 0);
}

TEST(TdmaMac, OversizeFrameDroppedInsteadOfWedgingTheSlot) {
  Star star;
  star.build(1, tdma_sensor_params());
  // data budget = 13 ms @ 250 kbps ~ 3250 bit; 600 bytes can never fit.
  bool oversize_ok = true;
  star.macs[1]->set_tx_done_callback(
      [&](const net::Message&, NodeId, bool ok) {
        if (!ok) oversize_ok = false;
      });
  EXPECT_TRUE(star.macs[1]->enqueue(
      data_msg(1, 0, 1, util::bytes(600)), 0));
  EXPECT_TRUE(star.macs[1]->enqueue(data_msg(1, 0, 2), 0));
  star.sim.run_until(3 * star.params.beacon_period);
  EXPECT_EQ(star.macs[1]->stats().oversize_drops, 1);
  EXPECT_FALSE(oversize_ok);  // reported as a failed send
  ASSERT_EQ(star.sink_rx.size(), 1u);  // the normal frame still flowed
  EXPECT_EQ(std::get<net::DataPacket>(star.sink_rx[0].body).seq, 2u);
}

TEST(TdmaMac, QueueFullDropsTail) {
  Star star;
  TdmaParams tiny = tdma_sensor_params();
  tiny.max_queue = 2;
  star.build(1, tiny);
  EXPECT_TRUE(star.macs[1]->enqueue(data_msg(1, 0, 1), 0));
  EXPECT_TRUE(star.macs[1]->enqueue(data_msg(1, 0, 2), 0));
  EXPECT_FALSE(star.macs[1]->enqueue(data_msg(1, 0, 3), 0));
  EXPECT_EQ(star.macs[1]->stats().queue_drops, 1);
}

// -------------------------------------------------- MacSpec / TdmaParams

TEST(TdmaParams, ValidationRejectsBadKnobs) {
  const auto broken = [](auto mutate) {
    TdmaParams p = tdma_sensor_params();
    mutate(p);
    return p;
  };
  EXPECT_THROW(broken([](TdmaParams& p) { p.guard = std::nan(""); })
                   .validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](TdmaParams& p) { p.guard = -1e-3; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](TdmaParams& p) { p.slot_len = 0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](TdmaParams& p) { p.slot_len = -0.01; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(
      broken([](TdmaParams& p) { p.guard = p.slot_len / 2; }).validate(),
      std::invalid_argument);
  EXPECT_THROW(broken([](TdmaParams& p) { p.sync_drift = 1.0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](TdmaParams& p) { p.beacon_bits = 0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](TdmaParams& p) { p.max_queue = 0; }).validate(),
               std::invalid_argument);
  EXPECT_NO_THROW(TdmaParams{}.validate());  // all-default = class defaults
  EXPECT_NO_THROW(tdma_sensor_params().validate());
  EXPECT_NO_THROW(tdma_wifi_params().validate());
}

TEST(TdmaParams, ResolvedForFillsOrChecksTheBeaconPeriod) {
  const TdmaParams base = tdma_sensor_params();
  const double rate = 40000.0;
  const TdmaParams tight = base.resolved_for(10, rate);
  const double beacon_air = base.preamble + 88.0 / rate;
  EXPECT_DOUBLE_EQ(tight.beacon_period,
                   beacon_air + base.guard + 10 * base.slot_len);
  // An explicit period must contain beacon + slots.
  TdmaParams roomy = base;
  roomy.beacon_period = 10.0;
  EXPECT_DOUBLE_EQ(roomy.resolved_for(10, rate).beacon_period, 10.0);
  TdmaParams cramped = base;
  cramped.beacon_period = 0.1;  // < 10 x 15 ms
  EXPECT_THROW(cramped.resolved_for(10, rate), std::invalid_argument);
}

TEST(MacSpecTest, ValidateOnlyReadsTdmaKnobsForTdma) {
  MacSpec spec;
  spec.tdma.guard = std::nan("");
  EXPECT_NO_THROW(spec.validate());  // kAuto never reads them
  spec.family = MacFamily::kTdma;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  EXPECT_EQ(std::string(to_string(MacFamily::kTdma)), "tdma");
  EXPECT_EQ(std::string(to_string(MacFamily::kAuto)), "auto");
}

// --------------------------------------------------- scenario integration

TEST(TdmaScenario, SensorConvergecastDeliversUnderTdma) {
  app::ScenarioConfig cfg =
      app::ScenarioConfig::multi_hop(app::EvalModel::kSensor, 10, 1);
  cfg.sensor_mac.family = MacFamily::kTdma;
  cfg.duration = 100.0;
  const app::RunMetrics m = app::run_scenario(cfg);
  EXPECT_GT(m.delivered, 0);
  EXPECT_GT(m.goodput, 0.0);
  EXPECT_EQ(m.dropped_mac, 0);  // no retries, no link failures
  EXPECT_GT(m.tdma_beacons_sent, 0);
  EXPECT_GT(m.tdma_beacons_heard, 0);
}

TEST(TdmaScenario, WifiModelRunsTdmaOnTheHighRadio) {
  app::ScenarioConfig cfg =
      app::ScenarioConfig::single_hop(app::EvalModel::kWifi, 5, 1);
  cfg.wifi_mac.family = MacFamily::kTdma;
  cfg.duration = 30.0;
  const app::RunMetrics m = app::run_scenario(cfg);
  EXPECT_GT(m.delivered, 0);
  EXPECT_GT(m.tdma_beacons_sent, 0);
}

TEST(TdmaScenario, WifiTdmaRequiresTheAlwaysOnModel) {
  app::ScenarioConfig cfg =
      app::ScenarioConfig::multi_hop(app::EvalModel::kDualRadio, 5, 100);
  cfg.wifi_mac.family = MacFamily::kTdma;
  EXPECT_THROW(app::run_scenario(cfg), std::invalid_argument);
}

TEST(TdmaScenario, BadTdmaKnobsAreRejectedUpFront) {
  app::ScenarioConfig cfg =
      app::ScenarioConfig::multi_hop(app::EvalModel::kSensor, 5, 1);
  cfg.sensor_mac.family = MacFamily::kTdma;
  cfg.sensor_mac.tdma = tdma_sensor_params();
  cfg.sensor_mac.tdma.guard = -1.0;
  EXPECT_THROW(app::run_scenario(cfg), std::invalid_argument);
}

TEST(TdmaScenario, RegistryVariantsSelectTdmaAndForwardAxes) {
  const auto& reg = app::ScenarioRegistry::builtin();
  const app::SweepPoint point(
      0, {{"senders", 10.0}, {"slot_ms", 20.0}, {"drift_ppm", 250.0}});
  const app::ScenarioConfig mh = reg.make("tdma-mh/sensor", point);
  EXPECT_TRUE(mh.sensor_mac.is_tdma());
  EXPECT_FALSE(mh.wifi_mac.is_tdma());
  EXPECT_DOUBLE_EQ(mh.sensor_mac.tdma.slot_len, 0.020);
  EXPECT_DOUBLE_EQ(mh.sensor_mac.tdma.sync_drift, 250e-6);
  const app::SweepPoint defaults(0, {{"senders", 10.0}});
  const app::ScenarioConfig wifi = reg.make("tdma-sh/wifi", defaults);
  EXPECT_TRUE(wifi.wifi_mac.is_tdma());
  EXPECT_FALSE(wifi.sensor_mac.is_tdma());
  EXPECT_DOUBLE_EQ(wifi.wifi_mac.tdma.slot_len,
                   tdma_wifi_params().slot_len);
}

TEST(TdmaScenario, ChurnUnderTdmaKeepsChannelConservation) {
  // FaultPlan crash/recover over a TDMA sensor network: crashes mid-slot
  // and mid-superframe must tear down cleanly (no stale slot timers — the
  // run would die on an assertion or dangling transmit) and the channel
  // conservation law must hold at the horizon.
  app::ScenarioConfig cfg =
      app::ScenarioConfig::multi_hop(app::EvalModel::kSensor, 10, 1);
  cfg.sensor_mac.family = MacFamily::kTdma;
  cfg.duration = 120.0;
  cfg.faults.node_crashes = 4;
  cfg.faults.mean_downtime = 20.0;
  cfg.faults.seed = 3;
  const app::RunMetrics m = app::run_scenario(cfg);
  EXPECT_GT(m.fault_node_crashes, 0);
  EXPECT_GE(m.fault_node_crashes, m.fault_node_recoveries);
  EXPECT_EQ(m.chan_rx_starts, m.chan_rx_ends + m.chan_rx_live_at_end);
  EXPECT_GT(m.delivered, 0);
}

}  // namespace
}  // namespace bcp::mac

// Unit tests: radio catalog (Table 1) and the EnergyMeter integrator.
#include <gtest/gtest.h>

#include "energy/energy_meter.hpp"
#include "energy/radio_model.hpp"
#include "util/units.hpp"

namespace bcp::energy {
namespace {

using util::bytes;

TEST(RadioCatalog, Table1Values) {
  // Spot-check the transcription of Table 1 (mW, mJ).
  const auto& c = cabletron_2mbps();
  EXPECT_DOUBLE_EQ(c.rate, 2e6);
  EXPECT_DOUBLE_EQ(c.p_tx, 1.400);
  EXPECT_DOUBLE_EQ(c.p_rx, 1.000);
  EXPECT_DOUBLE_EQ(c.p_idle, 0.830);
  EXPECT_DOUBLE_EQ(c.e_wakeup, 1.328e-3);

  const auto& l2 = lucent_2mbps();
  EXPECT_DOUBLE_EQ(l2.p_tx, 1.3272);
  EXPECT_DOUBLE_EQ(l2.p_rx, 0.9669);
  EXPECT_DOUBLE_EQ(l2.p_idle, 0.8437);
  EXPECT_DOUBLE_EQ(l2.e_wakeup, 0.6e-3);

  const auto& l11 = lucent_11mbps();
  EXPECT_DOUBLE_EQ(l11.rate, 11e6);
  EXPECT_DOUBLE_EQ(l11.p_tx, 1.3461);
  EXPECT_DOUBLE_EQ(l11.p_rx, 0.9006);
  EXPECT_DOUBLE_EQ(l11.p_idle, 0.7394);

  const auto& m = mica();
  EXPECT_DOUBLE_EQ(m.rate, 40e3);
  EXPECT_DOUBLE_EQ(m.p_tx, 0.081);
  EXPECT_DOUBLE_EQ(m.p_rx, 0.030);
  EXPECT_DOUBLE_EQ(m.p_idle, 0.030);

  const auto& m2 = mica2();
  EXPECT_DOUBLE_EQ(m2.rate, 38.4e3);
  EXPECT_DOUBLE_EQ(m2.p_tx, 0.042);
  EXPECT_DOUBLE_EQ(m2.p_rx, 0.029);

  const auto& mz = micaz();
  EXPECT_DOUBLE_EQ(mz.rate, 250e3);
  EXPECT_DOUBLE_EQ(mz.p_tx, 0.051);
  EXPECT_DOUBLE_EQ(mz.p_rx, 0.0591);
}

TEST(RadioCatalog, ClassesAndRanges) {
  EXPECT_EQ(cabletron_2mbps().radio_class, RadioClass::kHighPower);
  EXPECT_EQ(lucent_2mbps().radio_class, RadioClass::kHighPower);
  EXPECT_EQ(micaz().radio_class, RadioClass::kLowPower);
  // §2.2: 802.11 ~250 m, sensor ~40 m; Lucent-11 assumed sensor range.
  EXPECT_DOUBLE_EQ(cabletron_2mbps().range, 250);
  EXPECT_DOUBLE_EQ(mica().range, 40);
  EXPECT_DOUBLE_EQ(lucent_11mbps().range, 40);
}

TEST(RadioCatalog, SensorRadiosHaveNoWakeupCost) {
  EXPECT_DOUBLE_EQ(mica().e_wakeup, 0);
  EXPECT_DOUBLE_EQ(mica2().e_wakeup, 0);
  EXPECT_DOUBLE_EQ(micaz().e_wakeup, 0);
}

TEST(RadioCatalog, LookupByName) {
  ASSERT_TRUE(find_radio("Cabletron").has_value());
  ASSERT_TRUE(find_radio("Lucent-11Mbps").has_value());
  ASSERT_TRUE(find_radio("Micaz").has_value());
  EXPECT_FALSE(find_radio("Atheros").has_value());
  EXPECT_EQ(radio_catalog().size(), 6u);
}

TEST(RadioModel, TxRxEnergyLinearInBits) {
  const auto& r = micaz();
  EXPECT_NEAR(r.tx_energy(bytes(32)), 0.051 * 256.0 / 250e3, 1e-12);
  EXPECT_DOUBLE_EQ(r.tx_energy(2000), 2 * r.tx_energy(1000));
  EXPECT_DOUBLE_EQ(r.rx_energy(2000), 2 * r.rx_energy(1000));
}

TEST(RadioModel, PerPayloadBitIncludesHeaderOverhead) {
  const auto& r = micaz();
  const double plain = r.per_payload_bit(bytes(32), 0);
  const double with_header = r.per_payload_bit(bytes(32), bytes(11));
  EXPECT_NEAR(plain, (0.051 + 0.0591) / 250e3, 1e-12);
  EXPECT_NEAR(with_header / plain, 43.0 / 32.0, 1e-12);
  EXPECT_THROW(r.per_payload_bit(0, 0), std::invalid_argument);
}

TEST(EnergyMeter, IntegratesPowerOverTime) {
  EnergyMeter m(micaz());
  m.transition(EnergyCategory::kIdle, 0.0);
  m.transition(EnergyCategory::kTx, 10.0);   // 10 s idle
  m.transition(EnergyCategory::kRx, 11.0);   // 1 s tx
  m.finalize(13.0);                          // 2 s rx
  EXPECT_NEAR(m.energy(EnergyCategory::kIdle), 0.0591 * 10, 1e-12);
  EXPECT_NEAR(m.energy(EnergyCategory::kTx), 0.051 * 1, 1e-12);
  EXPECT_NEAR(m.energy(EnergyCategory::kRx), 0.0591 * 2, 1e-12);
  EXPECT_NEAR(m.duration(EnergyCategory::kIdle), 10.0, 1e-12);
  EXPECT_NEAR(m.duration(EnergyCategory::kRx), 2.0, 1e-12);
}

TEST(EnergyMeter, StartsOffAndOffDrawsNothing) {
  EnergyMeter m(cabletron_2mbps());
  EXPECT_EQ(m.category(), EnergyCategory::kOff);
  m.finalize(100.0);
  EXPECT_DOUBLE_EQ(m.total(), 0.0);
  EXPECT_DOUBLE_EQ(m.duration(EnergyCategory::kOff), 100.0);
}

TEST(EnergyMeter, WakeupLumpCharged) {
  EnergyMeter m(cabletron_2mbps());
  m.add_wakeup_charge();
  m.add_wakeup_charge();
  EXPECT_EQ(m.wakeup_count(), 2);
  EXPECT_NEAR(m.energy(EnergyCategory::kWaking), 2 * 1.328e-3, 1e-12);
}

TEST(EnergyMeter, WakingIntervalDrawsOnlyTheLump) {
  EnergyMeter m(cabletron_2mbps());
  m.transition(EnergyCategory::kWaking, 0.0);
  m.add_wakeup_charge();
  m.transition(EnergyCategory::kIdle, 0.1);
  m.finalize(0.1);
  EXPECT_NEAR(m.energy(EnergyCategory::kWaking), 1.328e-3, 1e-12);
  EXPECT_NEAR(m.duration(EnergyCategory::kWaking), 0.1, 1e-12);
}

TEST(EnergyMeter, OverhearDrawsReceivePower) {
  EnergyMeter m(micaz());
  m.transition(EnergyCategory::kOverhear, 0.0);
  m.finalize(2.0);
  EXPECT_NEAR(m.energy(EnergyCategory::kOverhear), 0.0591 * 2, 1e-12);
}

TEST(EnergyMeter, ChargingPolicySelectsCategories) {
  EnergyMeter m(micaz());
  m.transition(EnergyCategory::kTx, 0.0);
  m.transition(EnergyCategory::kRx, 1.0);
  m.transition(EnergyCategory::kOverhear, 2.0);
  m.transition(EnergyCategory::kIdle, 3.0);
  m.finalize(4.0);
  const double tx = 0.051, rx = 0.0591;
  EXPECT_NEAR(m.charged_total(ChargingPolicy::ideal_tx_rx()), tx + rx, 1e-12);
  EXPECT_NEAR(m.charged_total(ChargingPolicy::full()),
              tx + rx + rx + rx, 1e-12);  // + overhear + idle(=rx for micaz)
}

TEST(EnergyMeter, TimeMustNotGoBackwards) {
  EnergyMeter m(micaz());
  m.transition(EnergyCategory::kIdle, 5.0);
  EXPECT_THROW(m.transition(EnergyCategory::kTx, 4.0),
               std::invalid_argument);
  EXPECT_THROW(m.finalize(1.0), std::invalid_argument);
}

TEST(EnergyMeter, ZeroLengthIntervalsAreFree) {
  EnergyMeter m(micaz());
  m.transition(EnergyCategory::kTx, 1.0);
  m.transition(EnergyCategory::kRx, 1.0);
  m.transition(EnergyCategory::kIdle, 1.0);
  m.finalize(1.0);
  EXPECT_DOUBLE_EQ(m.total(), 0.0);
}

TEST(EnergyMeter, AddLumpAccumulates) {
  EnergyMeter m(micaz());
  m.add_lump(EnergyCategory::kRx, 0.5);
  m.add_lump(EnergyCategory::kRx, 0.25);
  EXPECT_DOUBLE_EQ(m.energy(EnergyCategory::kRx), 0.75);
  EXPECT_THROW(m.add_lump(EnergyCategory::kRx, -1.0),
               std::invalid_argument);
}

TEST(EnergyMeter, CategoryNamesAreStable) {
  EXPECT_STREQ(to_string(EnergyCategory::kTx), "tx");
  EXPECT_STREQ(to_string(EnergyCategory::kOverhear), "overhear");
  EXPECT_STREQ(to_string(EnergyCategory::kWaking), "waking");
}

}  // namespace
}  // namespace bcp::energy

// Unit tests: traffic generators.
#include <gtest/gtest.h>

#include <vector>

#include "app/workload.hpp"
#include "sim/simulator.hpp"

namespace bcp::app {
namespace {

TEST(CbrWorkload, RateIsHonoured) {
  sim::Simulator sim;
  std::vector<net::DataPacket> out;
  // 0.2 Kbps with 32 B packets -> one packet every 1.28 s.
  CbrWorkload w(sim, 3, 0, util::bytes(32), 200.0, 1,
                [&](net::DataPacket p) { out.push_back(p); });
  w.start();
  sim.run_until(1280.0);
  // 1000 intervals; the random phase may shave one packet.
  EXPECT_GE(w.generated(), 999);
  EXPECT_LE(w.generated(), 1001);
  EXPECT_EQ(static_cast<std::int64_t>(out.size()), w.generated());
  EXPECT_EQ(w.generated_bits(), w.generated() * util::bytes(32));
}

TEST(CbrWorkload, PacketsAreWellFormedAndOrdered) {
  sim::Simulator sim;
  std::vector<net::DataPacket> out;
  CbrWorkload w(sim, 7, 2, util::bytes(32), 2000.0, 9,
                [&](net::DataPacket p) { out.push_back(p); });
  w.start();
  sim.run_until(10.0);
  ASSERT_GT(out.size(), 10u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].origin, 7);
    EXPECT_EQ(out[i].destination, 2);
    EXPECT_EQ(out[i].seq, i + 1);
    EXPECT_EQ(out[i].payload_bits, util::bytes(32));
    if (i > 0) {
      EXPECT_GT(out[i].created_at, out[i - 1].created_at);
    }
  }
  // Inter-packet spacing is exactly the CBR interval after the phase.
  EXPECT_NEAR(out[5].created_at - out[4].created_at, 0.128, 1e-9);
}

TEST(CbrWorkload, PhaseDiffersAcrossSeeds) {
  sim::Simulator sim;
  double first_a = -1, first_b = -1;
  CbrWorkload a(sim, 1, 0, util::bytes(32), 200.0, 11,
                [&](net::DataPacket p) {
                  if (first_a < 0) first_a = p.created_at;
                });
  CbrWorkload b(sim, 2, 0, util::bytes(32), 200.0, 12,
                [&](net::DataPacket p) {
                  if (first_b < 0) first_b = p.created_at;
                });
  a.start();
  b.start();
  sim.run_until(2.0);
  EXPECT_NE(first_a, first_b);
}

TEST(CbrWorkload, InvalidConfigThrows) {
  sim::Simulator sim;
  EXPECT_THROW(CbrWorkload(sim, 0, 1, 0, 200.0, 1, [](net::DataPacket) {}),
               std::invalid_argument);
  EXPECT_THROW(
      CbrWorkload(sim, 0, 1, util::bytes(32), 0.0, 1, [](net::DataPacket) {}),
      std::invalid_argument);
}

TEST(BurstyWorkload, LongRunRateMatchesDutyCycle) {
  sim::Simulator sim;
  BurstyWorkload::Params p;
  p.packet_bits = util::bytes(32);
  p.on_rate_bps = 8000;
  p.mean_on = 2.0;
  p.mean_off = 8.0;
  std::int64_t n = 0;
  BurstyWorkload w(sim, 1, 0, p, 77, [&](net::DataPacket) { ++n; });
  w.start();
  const double horizon = 20000.0;
  sim.run_until(horizon);
  // Expected: duty cycle 0.2 × 8000 bps / 256 bits ≈ 6.25 pkt/s.
  const double rate = static_cast<double>(n) / horizon;
  EXPECT_NEAR(rate, 6.25, 1.0);
}

TEST(BurstyWorkload, SilencePeriodsContainNoTraffic) {
  sim::Simulator sim;
  BurstyWorkload::Params p;
  p.on_rate_bps = 8000;
  p.mean_on = 1.0;
  p.mean_off = 50.0;
  std::vector<double> times;
  BurstyWorkload w(sim, 1, 0, p, 3,
                   [&](net::DataPacket d) { times.push_back(d.created_at); });
  w.start();
  sim.run_until(2000.0);
  ASSERT_GT(times.size(), 20u);
  // Gaps are either one packet interval (32 ms) or a long silence; nothing
  // in between (say 0.1 s .. 1 s) should dominate.
  int mid_gaps = 0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    const double gap = times[i] - times[i - 1];
    if (gap > 0.1 && gap < 1.0) { ++mid_gaps; }
  }
  EXPECT_LT(static_cast<double>(mid_gaps) / static_cast<double>(times.size()),
            0.2);
}

TEST(BurstyWorkload, InvalidConfigThrows) {
  sim::Simulator sim;
  BurstyWorkload::Params p;
  p.mean_on = 0.0;
  EXPECT_THROW(BurstyWorkload(sim, 0, 1, p, 1, [](net::DataPacket) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace bcp::app

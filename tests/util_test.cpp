// Unit tests: util module (rng, units, options, log, contracts).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/sysinfo.hpp"
#include "util/units.hpp"

namespace bcp::util {
namespace {

TEST(Units, ByteConversionsRoundTrip) {
  EXPECT_EQ(bytes(1), 8);
  EXPECT_EQ(bytes(32), 256);
  EXPECT_EQ(kilobytes(1), 8192);
  EXPECT_DOUBLE_EQ(to_bytes(bytes(1024)), 1024.0);
  EXPECT_DOUBLE_EQ(to_kilobytes(kilobytes(7)), 7.0);
}

TEST(Units, PowerAndEnergyScaling) {
  EXPECT_DOUBLE_EQ(milliwatts(1400), 1.4);
  EXPECT_DOUBLE_EQ(millijoules(0.6), 0.0006);
  EXPECT_DOUBLE_EQ(microjoules(250), 0.00025);
}

TEST(Units, RateHelpers) {
  EXPECT_DOUBLE_EQ(kbps(250), 250e3);
  EXPECT_DOUBLE_EQ(mbps(11), 11e6);
}

TEST(Units, TxDurationMatchesHandComputation) {
  // 1024 B at 2 Mb/s = 4.096 ms.
  EXPECT_NEAR(tx_duration(bytes(1024), mbps(2)), 4.096e-3, 1e-12);
  // 32 B at 40 Kb/s = 6.4 ms.
  EXPECT_NEAR(tx_duration(bytes(32), kbps(40)), 6.4e-3, 1e-12);
}

TEST(Units, TimeHelpers) {
  EXPECT_DOUBLE_EQ(milliseconds(100), 0.1);
  EXPECT_DOUBLE_EQ(microseconds(20), 2e-5);
}

TEST(Rng, DeterministicForEqualSeeds) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 5.5);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformIntCoversAllResidues) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIntMeanIsCentred) {
  Xoshiro256 rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(rng.uniform_int(100));
  EXPECT_NEAR(sum / n, 49.5, 0.5);
}

TEST(Rng, ChanceExtremes) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequencyApproximatesP) {
  Xoshiro256 rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatches) {
  Xoshiro256 rng(19);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, ExponentialIsPositive) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, SubstreamsAreIndependentOfSiblingCount) {
  // The stream for (seed, id, salt) must not depend on other streams.
  const auto s1 = substream(99, 5, 1);
  const auto s2 = substream(99, 5, 1);
  EXPECT_EQ(s1, s2);
  EXPECT_NE(substream(99, 5, 1), substream(99, 6, 1));
  EXPECT_NE(substream(99, 5, 1), substream(99, 5, 2));
  EXPECT_NE(substream(99, 5, 1), substream(100, 5, 1));
}

TEST(Rng, InvalidArgumentsThrow) {
  Xoshiro256 rng(1);
  EXPECT_THROW(rng.uniform_int(0), std::invalid_argument);
  EXPECT_THROW(rng.chance(-0.1), std::invalid_argument);
  EXPECT_THROW(rng.chance(1.1), std::invalid_argument);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Contracts, RequireAndEnsureThrowDistinctTypes) {
  EXPECT_THROW(BCP_REQUIRE(false), std::invalid_argument);
  EXPECT_THROW(BCP_ENSURE(false), std::logic_error);
  EXPECT_NO_THROW(BCP_REQUIRE(true));
  EXPECT_NO_THROW(BCP_ENSURE(true));
}

TEST(Options, DefaultsAndParsing) {
  Options opt("prog", "test");
  opt.add_flag("full", "run full scale")
      .add_int("runs", 3, "replications")
      .add_double("rate", 0.2, "kbps")
      .add_string("mode", "sh", "case");
  const char* argv[] = {"prog", "--runs", "20", "--full", "--rate=2.0"};
  ASSERT_TRUE(opt.parse(5, argv));
  EXPECT_TRUE(opt.flag("full"));
  EXPECT_EQ(opt.get_int("runs"), 20);
  EXPECT_DOUBLE_EQ(opt.get_double("rate"), 2.0);
  EXPECT_EQ(opt.get_string("mode"), "sh");
}

TEST(Options, UnknownOptionFails) {
  Options opt("prog", "test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_FALSE(opt.parse(2, argv));
}

TEST(Options, MissingValueFails) {
  Options opt("prog", "test");
  opt.add_int("runs", 3, "replications");
  const char* argv[] = {"prog", "--runs"};
  EXPECT_FALSE(opt.parse(2, argv));
}

TEST(Options, BadNumberFails) {
  Options opt("prog", "test");
  opt.add_int("runs", 3, "replications");
  const char* argv[] = {"prog", "--runs", "abc"};
  EXPECT_FALSE(opt.parse(3, argv));
}

TEST(Options, HelpReturnsFalse) {
  Options opt("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(opt.parse(2, argv));
}

TEST(Options, UndeclaredLookupThrows) {
  Options opt("prog", "test");
  EXPECT_THROW(opt.get_int("zzz"), std::invalid_argument);
}

TEST(Options, DuplicateDeclarationThrows) {
  Options opt("prog", "test");
  opt.add_int("runs", 1, "x");
  EXPECT_THROW(opt.add_flag("runs", "y"), std::invalid_argument);
}

TEST(Options, UsageMentionsEveryOption) {
  Options opt("prog", "summary");
  opt.add_flag("full", "everything").add_int("runs", 3, "count");
  const std::string u = opt.usage();
  EXPECT_NE(u.find("--full"), std::string::npos);
  EXPECT_NE(u.find("--runs"), std::string::npos);
  EXPECT_NE(u.find("summary"), std::string::npos);
}

TEST(Log, LevelFilters) {
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  log_info("should be dropped silently");
  set_log_level(LogLevel::kWarn);
}

TEST(Sysinfo, PeakRssIsPositiveAndMonotone) {
  const double first = peak_rss_mib();
  EXPECT_GT(first, 0.0);  // a running test binary has resident pages
  // ru_maxrss is a high-water mark: it can only grow.
  EXPECT_GE(peak_rss_mib(), first);
}

}  // namespace
}  // namespace bcp::util

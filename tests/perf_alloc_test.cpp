// The allocation contract of the event hot path, enforced.
//
// A process-wide operator-new hook counts every C++ heap allocation; each
// test warms its structures to their high-water mark, snapshots the
// counter, runs thousands of steady-state cycles and asserts the counter
// did not move. This is the load-bearing guarantee behind the simulator's
// events/sec: schedule/cancel/dispatch recycles generation-stamped slots,
// inline callbacks live inside them, and pooled message payloads ride the
// free list — none of it may touch the allocator once warm.
//
// The hook (util/alloc_count_hook.hpp, shared with bench_micro_core's
// allocs_per_item counters) is included only by this dedicated test
// binary, so the counting does not perturb the rest of the suite.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>

#include "net/message.hpp"
#include "net/message_ref.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"
#include "util/alloc_count_hook.hpp"
#include "util/units.hpp"

namespace bcp {
namespace {

using util::g_alloc_count;

TEST(PerfAlloc, ScheduleCancelDispatchIsAllocationFreeWhenWarm) {
  sim::Simulator s;
  long long fired = 0;
  // The MAC-timer mix: schedule a batch, cancel every other event (the
  // usual fate of retry/ack timers), dispatch the rest.
  const auto cycle = [&](int n) {
    for (int i = 0; i < n; ++i) {
      const auto h = s.schedule_in(1.0 + 0.5 * i, [&fired] { ++fired; });
      if (i % 2 == 0) s.cancel(h);
    }
    s.run();
  };
  cycle(256);  // warm-up: vectors grow to their high-water capacity
  const std::uint64_t before = g_alloc_count;
  for (int round = 0; round < 100; ++round) cycle(256);
  EXPECT_EQ(g_alloc_count - before, 0u)
      << "schedule/cancel/dispatch allocated in steady state";
  EXPECT_EQ(fired, 101 * 128);
}

TEST(PerfAlloc, NestedSchedulingFromCallbacksIsAllocationFreeWhenWarm) {
  sim::Simulator s;
  // Chains that reschedule from inside callbacks — the Timer/protocol
  // pattern — must also recycle slots without allocating.
  int remaining = 0;
  std::function<void()> hop;  // intentionally cold; captured by pointer
  auto* hop_ptr = &hop;
  hop = [&s, &remaining, hop_ptr] {
    if (remaining-- > 0) s.schedule_in(0.25, [hop_ptr] { (*hop_ptr)(); });
  };
  remaining = 64;
  s.schedule_in(0.25, [hop_ptr] { (*hop_ptr)(); });
  s.run();  // warm-up chain
  const std::uint64_t before = g_alloc_count;
  remaining = 1024;
  s.schedule_in(0.25, [hop_ptr] { (*hop_ptr)(); });
  s.run();
  EXPECT_EQ(g_alloc_count - before, 0u);
  EXPECT_EQ(remaining, -1);
}

TEST(PerfAlloc, CaptureChannelHotPathIsAllocationFreeWhenWarm) {
  // The SINR/capture path threads per-arrival power state through the
  // TxSlot/arrival vectors — none of which may touch the allocator once
  // warm, exactly like the default channel. Colliding transmissions
  // exercise the interference bookkeeping (peak updates + running sums)
  // on every cycle.
  sim::Simulator s;
  phy::Channel::Params params;
  params.propagation.kind = phy::PropagationKind::kLogDistance;
  params.capture.enabled = true;
  phy::Channel ch(s, {{0, 0}, {10, 0}, {20, 0}}, 50.0, params, 1);
  phy::Frame f0;
  f0.tx_node = 0;
  f0.rx_node = 1;
  f0.payload_bits = 256;
  f0.header_bits = 88;
  net::Message m0;
  m0.src = 0;
  m0.dst = 1;
  m0.body = net::DataPacket{0, 1, 1, 256, 0.0};
  f0.message = net::make_message(std::move(m0));
  phy::Frame f2 = f0;
  f2.tx_node = 2;  // shares the pooled payload; distinct transmitter
  const auto cycle = [&](int n) {
    for (int i = 0; i < n; ++i) {
      const double t = i * 0.1;  // relative: the clock keeps advancing
      s.schedule_in(t, [&ch, &f0] { ch.start_tx(0, f0, 0.01); });
      s.schedule_in(t + 0.002, [&ch, &f2] { ch.start_tx(2, f2, 0.01); });
    }
    s.run();
  };
  cycle(64);  // warm-up: arrival/slot vectors reach high-water capacity
  const std::uint64_t before = g_alloc_count;
  for (int round = 0; round < 50; ++round) cycle(64);
  EXPECT_EQ(g_alloc_count - before, 0u)
      << "the capture channel allocated in steady state";
  EXPECT_GT(ch.stats().deliveries_corrupt, 0);  // collisions really happened
  EXPECT_EQ(ch.live_arrivals(), 0);
}

TEST(PerfAlloc, PooledControlMessagesAreAllocationFreeWhenWarm) {
  net::Message proto;
  proto.src = 3;
  proto.dst = 4;
  proto.body = net::WakeupRequest{3, 4, 1, util::bytes(1600)};
  { net::MessageRef warm = net::make_message(net::Message(proto)); }
  const std::uint64_t before = g_alloc_count;
  for (int i = 0; i < 10000; ++i) {
    net::MessageRef ref = net::make_message(net::Message(proto));
    net::MessageRef queue_copy = ref;   // MAC queue
    net::MessageRef frame_copy = ref;   // frame on the air
    EXPECT_GT(frame_copy->size_bits(), 0);
  }
  EXPECT_EQ(g_alloc_count - before, 0u)
      << "pooled message round-trips allocated in steady state";
}

}  // namespace
}  // namespace bcp

// Property-based and parameterized sweeps across modules:
//  * BulkBuffer randomized ops against a reference model
//  * MAC delivery under a loss-probability sweep (TEST_P)
//  * full-scenario invariants across models × bursts (TEST_P)
//  * cross-model conservation laws across propagation models × fault
//    plans (TEST_P)
//  * channel delivery conservation
//  * shortcut-learning reachability gating
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "app/scenario.hpp"
#include "core/bulk_buffer.hpp"
#include "energy/radio_model.hpp"
#include "mac/csma_mac.hpp"
#include "mac/mac_params.hpp"
#include "phy/channel.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace bcp {
namespace {

using util::bytes;

// ---------------------------------------------------- BulkBuffer fuzzing --

TEST(BulkBufferFuzz, MatchesReferenceModelOverRandomOps) {
  util::Xoshiro256 rng(20240610);
  core::BulkBuffer buffer(bytes(4096));
  std::map<net::NodeId, std::deque<net::DataPacket>> model;
  std::int64_t model_bits = 0;
  std::uint32_t seq = 0;

  for (int op = 0; op < 20000; ++op) {
    const auto hop = static_cast<net::NodeId>(rng.uniform_int(4));
    const double dice = rng.uniform();
    if (dice < 0.5) {
      // push a packet of 8..64 bytes
      net::DataPacket p{0, 9, ++seq,
                        bytes(8 + static_cast<std::int64_t>(
                                      rng.uniform_int(57))),
                        static_cast<double>(op)};
      const bool accepted = buffer.push(hop, p);
      const bool expect = model_bits + p.payload_bits <= bytes(4096);
      ASSERT_EQ(accepted, expect) << "op " << op;
      if (accepted) {
        model[hop].push_back(p);
        model_bits += p.payload_bits;
      }
    } else if (dice < 0.8) {
      // pop a random budget
      const auto budget = bytes(static_cast<std::int64_t>(
          rng.uniform_int(513)));
      auto out = buffer.pop_up_to(hop, budget);
      util::Bits used = 0;
      auto& q = model[hop];
      std::vector<net::DataPacket> expect;
      while (!q.empty() && used + q.front().payload_bits <= budget) {
        used += q.front().payload_bits;
        expect.push_back(q.front());
        q.pop_front();
      }
      model_bits -= used;
      ASSERT_EQ(out.size(), expect.size()) << "op " << op;
      for (std::size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i].seq, expect[i].seq) << "op " << op;
    } else if (dice < 0.9) {
      // pop_front
      auto got = buffer.pop_front(hop);
      auto& q = model[hop];
      if (q.empty()) {
        ASSERT_FALSE(got.has_value()) << "op " << op;
      } else {
        ASSERT_TRUE(got.has_value());
        ASSERT_EQ(got->seq, q.front().seq) << "op " << op;
        model_bits -= q.front().payload_bits;
        q.pop_front();
      }
    } else {
      // invariants
      auto& q = model[hop];
      ASSERT_EQ(buffer.packet_count(hop), q.size());
      const util::Bits qbits = std::accumulate(
          q.begin(), q.end(), util::Bits{0},
          [](util::Bits acc, const net::DataPacket& p) {
            return acc + p.payload_bits;
          });
      ASSERT_EQ(buffer.buffered_bits(hop), qbits);
      if (!q.empty()) {
        auto oldest = buffer.oldest_created_at(hop);
        ASSERT_TRUE(oldest.has_value());
        ASSERT_EQ(*oldest, q.front().created_at);
      } else {
        ASSERT_FALSE(buffer.oldest_created_at(hop).has_value());
      }
    }
    ASSERT_EQ(buffer.total_bits(), model_bits) << "op " << op;
    ASSERT_LE(buffer.total_bits(), buffer.capacity_bits());
  }
}

// ------------------------------------------------------- MAC loss sweep --

class MacLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(MacLossSweep, DeliveryDegradesGracefullyNeverDuplicates) {
  const double loss = GetParam();
  sim::Simulator sim;
  phy::Channel channel(sim, {{0, 0}, {10, 0}}, 50.0,
                       phy::Channel::Params{loss}, 4242);
  phy::Radio r0(sim, channel, 0, energy::micaz(), phy::OverhearMode::kNone,
                true);
  phy::Radio r1(sim, channel, 1, energy::micaz(), phy::OverhearMode::kNone,
                true);
  mac::CsmaCaMac m0(sim, r0, mac::sensor_mac_params(), 1);
  mac::CsmaCaMac m1(sim, r1, mac::sensor_mac_params(), 2);
  std::vector<std::uint32_t> delivered;
  m1.set_rx_callback([&](const net::Message& m, net::NodeId) {
    delivered.push_back(std::get<net::DataPacket>(m.body).seq);
  });
  const int n = 300;
  for (std::uint32_t i = 1; i <= n; ++i) {
    net::Message msg;
    msg.src = 0;
    msg.dst = 1;
    msg.body = net::DataPacket{0, 1, i, bytes(32), 0.0};
    m0.enqueue(msg, 1);
  }
  sim.run();
  // No duplicates, in order.
  for (std::size_t i = 1; i < delivered.size(); ++i)
    ASSERT_GT(delivered[i], delivered[i - 1]);
  // Success probability with r retries at per-frame loss p (ack loss
  // folded in conservatively): should beat 1-p^2 easily.
  const double frac =
      static_cast<double>(delivered.size()) / static_cast<double>(n);
  if (loss == 0.0) {
    EXPECT_EQ(delivered.size(), static_cast<std::size_t>(n));
  } else {
    EXPECT_GT(frac, 1.0 - 4.0 * loss * loss);
  }
  // Attempts grow with loss.
  EXPECT_GE(m0.stats().tx_attempts, n);
}

INSTANTIATE_TEST_SUITE_P(LossLevels, MacLossSweep,
                         ::testing::Values(0.0, 0.05, 0.1, 0.2, 0.3, 0.4),
                         [](const auto& param_info) {
                           return "loss" +
                                  std::to_string(static_cast<int>(
                                      param_info.param * 100));
                         });

// ------------------------------------------------ scenario invariants ----

struct ScenarioCase {
  app::EvalModel model;
  int burst;
  bool multi_hop;
};

class ScenarioInvariants : public ::testing::TestWithParam<ScenarioCase> {};

TEST_P(ScenarioInvariants, MetricsStayWithinPhysicalBounds) {
  const auto& param = GetParam();
  auto cfg = param.multi_hop
                 ? app::ScenarioConfig::multi_hop(param.model, 6, param.burst)
                 : app::ScenarioConfig::single_hop(param.model, 6,
                                                   param.burst);
  cfg.duration = param.multi_hop ? 250.0 : 1200.0;
  cfg.seed = 99;
  const auto m = app::run_scenario(cfg);

  EXPECT_GE(m.goodput, 0.0);
  EXPECT_LE(m.goodput, 1.0);
  EXPECT_LE(m.delivered, m.generated);
  EXPECT_GE(m.mean_delay, 0.0);
  EXPECT_LE(m.mean_delay, cfg.duration);
  EXPECT_GE(m.normalized_energy, 0.0);
  // Charged categories are individually non-negative.
  for (const double e :
       {m.sensor_energy.tx, m.sensor_energy.rx, m.sensor_energy.overhear,
        m.sensor_energy.idle, m.wifi_energy.tx, m.wifi_energy.rx,
        m.wifi_energy.overhear, m.wifi_energy.idle, m.wifi_energy.wakeup})
    EXPECT_GE(e, 0.0);
  // Radios that do not exist in a model must report zero energy.
  if (param.model == app::EvalModel::kSensor) {
    EXPECT_DOUBLE_EQ(m.wifi_energy.full(), 0.0);
  }
  if (param.model == app::EvalModel::kWifi) {
    EXPECT_DOUBLE_EQ(m.sensor_energy.full(), 0.0);
  }
  // Something must actually happen.
  EXPECT_GT(m.generated, 0);
  EXPECT_GT(m.delivered, 0);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndBursts, ScenarioInvariants,
    ::testing::Values(ScenarioCase{app::EvalModel::kSensor, 100, true},
                      ScenarioCase{app::EvalModel::kWifi, 100, true},
                      ScenarioCase{app::EvalModel::kDualRadio, 10, true},
                      ScenarioCase{app::EvalModel::kDualRadio, 100, true},
                      ScenarioCase{app::EvalModel::kDualRadio, 500, true},
                      ScenarioCase{app::EvalModel::kDualRadio, 100, false},
                      ScenarioCase{app::EvalModel::kSensor, 100, false}),
    [](const auto& param_info) {
      return std::string(app::to_string(param_info.param.model)[0] == '8'
                             ? "Wifi"
                             : app::to_string(param_info.param.model)) +
             "_b" + std::to_string(param_info.param.burst) +
             (param_info.param.multi_hop ? "_mh" : "_sh");
    });

// ------------------------- propagation model × fault plan invariants ----

struct CrossModelCase {
  const char* name;
  phy::PropagationKind kind;
  double extra_loss;
  int crashes;
  int link_flaps;
  bool multi_hop;
  app::EvalModel model;
  bool capture = false;  ///< SINR/capture collision resolution on
  /// > 1 runs the case on the sharded parallel engine (fault-free cases
  /// only — the sharded path rejects fault plans). The conservation laws
  /// must hold per-shard and therefore summed.
  int shards = 0;
  /// > 0 enables finite batteries with this per-radio-class budget
  /// (single-queue engine only — the sharded path rejects batteries).
  double sensor_j = 0;
  double wifi_j = 0;
};

class CrossModelInvariants
    : public ::testing::TestWithParam<CrossModelCase> {};

/// Conservation laws that must hold for EVERY channel model and fault
/// plan: rx_start/rx_end matching, delivery counting, goodput bounds, and
/// energy bounded by radio-on time at peak draw.
TEST_P(CrossModelInvariants, ConservationLawsHold) {
  const CrossModelCase& c = GetParam();
  auto cfg = c.multi_hop ? app::ScenarioConfig::multi_hop(c.model, 5, 50)
                         : app::ScenarioConfig::single_hop(c.model, 5, 50);
  cfg.duration = 250.0;
  cfg.seed = 77;
  cfg.propagation.kind = c.kind;
  cfg.frame_loss_prob = c.extra_loss;
  cfg.capture_enabled = c.capture;
  cfg.faults.node_crashes = c.crashes;
  cfg.faults.link_flaps = c.link_flaps;
  cfg.faults.mean_downtime = 40.0;
  cfg.faults.mean_link_downtime = 30.0;
  cfg.faults.seed = 3;
  if (c.shards > 1) cfg.shards = c.shards;
  const bool battery = c.sensor_j > 0 || c.wifi_j > 0;
  if (battery) {
    cfg.battery.enabled = true;
    cfg.battery.sensor_initial_j = c.sensor_j;
    cfg.battery.wifi_initial_j = c.wifi_j;
  }
  const auto m = app::run_scenario(cfg);
  const int n = cfg.topology.node_count();

  // Every rx_start gets exactly one rx_end (or is still on the air at the
  // horizon) — through collisions, per-link losses, crashes and flaps.
  EXPECT_EQ(m.chan_rx_starts, m.chan_rx_ends + m.chan_rx_live_at_end);
  // Deliveries cannot exceed frames × possible hearers.
  EXPECT_LE(m.chan_rx_ends, m.chan_frames * (n - 1));
  EXPECT_GE(m.chan_frames, 0);

  // Traffic accounting.
  EXPECT_GE(m.goodput, 0.0);
  EXPECT_LE(m.goodput, 1.0);
  EXPECT_LE(m.delivered, m.generated);
  EXPECT_GE(m.mean_delay, 0.0);
  EXPECT_LE(m.mean_delay, cfg.duration);
  EXPECT_GT(m.generated, 0);

  // Energy: every category non-negative…
  for (const double e :
       {m.sensor_energy.tx, m.sensor_energy.rx, m.sensor_energy.overhear,
        m.sensor_energy.idle, m.sensor_energy.wakeup, m.wifi_energy.tx,
        m.wifi_energy.rx, m.wifi_energy.overhear, m.wifi_energy.idle,
        m.wifi_energy.wakeup})
    EXPECT_GE(e, 0.0);
  // …and bounded by n nodes drawing peak power for the whole run plus the
  // charged wake-up lumps.
  const auto peak = [](const energy::RadioEnergyModel& r) {
    return std::max({r.p_tx, r.p_rx, r.p_idle});
  };
  EXPECT_LE(m.sensor_energy.full(),
            n * cfg.duration * peak(cfg.sensor_radio) + 1e-6);
  EXPECT_LE(m.wifi_energy.full(),
            n * cfg.duration * peak(cfg.wifi_radio) +
                static_cast<double>(m.wifi_wakeup_transitions) *
                    cfg.wifi_radio.e_wakeup +
                1e-6);

  // Fault bookkeeping: recoveries never exceed crashes; the fault-free
  // cases report zero.
  EXPECT_LE(m.fault_node_recoveries, m.fault_node_crashes);
  if (c.crashes == 0) {
    EXPECT_EQ(m.fault_node_crashes, 0);
  }
  // Battery deaths count as membership changes, so the zero-rebuild
  // contract only binds the battery-free fault-free cases.
  if (c.crashes == 0 && c.link_flaps == 0 && !battery) {
    EXPECT_EQ(m.route_rebuilds, 0);
  }

  // Battery laws: no node ever draws more than its budget (one wake-up
  // lump of overshoot is the indivisible-charge allowance); dead-node
  // accounting stays inside the horizon; batteries off means no deaths.
  if (battery) {
    EXPECT_LE(m.battery_max_drawn_fraction,
              1.0 + cfg.wifi_radio.e_wakeup /
                        std::max(c.wifi_j, c.sensor_j));
    EXPECT_GE(m.battery_deaths, 0);
    if (m.battery_deaths > 0) {
      EXPECT_GT(m.time_to_first_death, 0.0);
      EXPECT_LE(m.time_to_first_death, cfg.duration);
      EXPECT_LE(m.delivered_bits_until_first_death,
                m.delivered * cfg.packet_bits);
    } else {
      EXPECT_DOUBLE_EQ(m.time_to_first_death, -1);
    }
    if (m.time_to_sink_partition >= 0) {
      EXPECT_GE(m.time_to_sink_partition, m.time_to_first_death);
      EXPECT_GE(m.delivered_bits_until_partition,
                m.delivered_bits_until_first_death);
    }
  } else {
    EXPECT_EQ(m.battery_deaths, 0);
    EXPECT_DOUBLE_EQ(m.time_to_first_death, -1);
    EXPECT_DOUBLE_EQ(m.battery_max_drawn_fraction, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsTimesFaults, CrossModelInvariants,
    ::testing::Values(
        // UnitDisc: clean, lossy, churned, flapped.
        CrossModelCase{"disc_mh_dual", phy::PropagationKind::kUnitDisc, 0.0,
                       0, 0, true, app::EvalModel::kDualRadio},
        CrossModelCase{"disc_lossy_mh_dual", phy::PropagationKind::kUnitDisc,
                       0.2, 0, 0, true, app::EvalModel::kDualRadio},
        CrossModelCase{"disc_churn_mh_sensor",
                       phy::PropagationKind::kUnitDisc, 0.2, 3, 0, true,
                       app::EvalModel::kSensor},
        CrossModelCase{"disc_churn_sh_dual", phy::PropagationKind::kUnitDisc,
                       0.0, 3, 0, false, app::EvalModel::kDualRadio},
        CrossModelCase{"disc_flaps_mh_wifi", phy::PropagationKind::kUnitDisc,
                       0.0, 0, 3, true, app::EvalModel::kWifi},
        // LogDistance: shadowed links, with and without churn.
        CrossModelCase{"logd_mh_dual", phy::PropagationKind::kLogDistance,
                       0.0, 0, 0, true, app::EvalModel::kDualRadio},
        CrossModelCase{"logd_churn_mh_sensor",
                       phy::PropagationKind::kLogDistance, 0.0, 3, 2, true,
                       app::EvalModel::kSensor},
        CrossModelCase{"logd_lossy_sh_dual",
                       phy::PropagationKind::kLogDistance, 0.1, 0, 0, false,
                       app::EvalModel::kDualRadio},
        CrossModelCase{"logd_churn_mh_wifi",
                       phy::PropagationKind::kLogDistance, 0.0, 2, 0, true,
                       app::EvalModel::kWifi},
        CrossModelCase{"logd_churn_flaps_mh_dual",
                       phy::PropagationKind::kLogDistance, 0.0, 4, 2, true,
                       app::EvalModel::kDualRadio},
        // SINR/capture collision resolution, across all three models and
        // composed with churn — the conservation laws may not care HOW a
        // collision resolves.
        CrossModelCase{"disc_capture_mh_dual",
                       phy::PropagationKind::kUnitDisc, 0.0, 0, 0, true,
                       app::EvalModel::kDualRadio, true},
        CrossModelCase{"logd_capture_mh_dual",
                       phy::PropagationKind::kLogDistance, 0.0, 0, 0, true,
                       app::EvalModel::kDualRadio, true},
        CrossModelCase{"logd_capture_churn_mh_sensor",
                       phy::PropagationKind::kLogDistance, 0.0, 3, 2, true,
                       app::EvalModel::kSensor, true},
        CrossModelCase{"dper_capture_sh_dual",
                       phy::PropagationKind::kDistancePer, 0.0, 2, 0, false,
                       app::EvalModel::kDualRadio, true},
        // DistancePer: curve-driven PER.
        CrossModelCase{"dper_mh_dual", phy::PropagationKind::kDistancePer,
                       0.0, 0, 0, true, app::EvalModel::kDualRadio},
        CrossModelCase{"dper_churn_mh_sensor",
                       phy::PropagationKind::kDistancePer, 0.0, 2, 0, true,
                       app::EvalModel::kSensor},
        CrossModelCase{"dper_lossy_sh_sensor",
                       phy::PropagationKind::kDistancePer, 0.2, 0, 0, false,
                       app::EvalModel::kSensor},
        CrossModelCase{"dper_churn_sh_dual",
                       phy::PropagationKind::kDistancePer, 0.0, 2, 0, false,
                       app::EvalModel::kDualRadio},
        // Sharded parallel engine (fault-free): the same conservation laws
        // through cross-shard boundary frames, with and without capture.
        CrossModelCase{"sharded_disc_mh_dual",
                       phy::PropagationKind::kUnitDisc, 0.0, 0, 0, true,
                       app::EvalModel::kDualRadio, false, 4},
        CrossModelCase{"sharded_logd_lossy_sh_sensor",
                       phy::PropagationKind::kLogDistance, 0.1, 0, 0, false,
                       app::EvalModel::kSensor, false, 3},
        CrossModelCase{"sharded_disc_capture_mh_wifi",
                       phy::PropagationKind::kUnitDisc, 0.0, 0, 0, true,
                       app::EvalModel::kWifi, true, 2},
        // Finite batteries (single-queue engine): budgets that kill nodes
        // mid-run, across models, composed with loss and with churn.
        CrossModelCase{"battery_disc_mh_sensor",
                       phy::PropagationKind::kUnitDisc, 0.0, 0, 0, true,
                       app::EvalModel::kSensor, false, 0, 4.0, 0.0},
        CrossModelCase{"battery_disc_mh_wifi",
                       phy::PropagationKind::kUnitDisc, 0.0, 0, 0, true,
                       app::EvalModel::kWifi, false, 0, 0.0, 100.0},
        CrossModelCase{"battery_logd_mh_dual",
                       phy::PropagationKind::kLogDistance, 0.1, 0, 0, true,
                       app::EvalModel::kDualRadio, false, 0, 5.0, 50.0},
        CrossModelCase{"battery_churn_disc_mh_sensor",
                       phy::PropagationKind::kUnitDisc, 0.0, 3, 0, true,
                       app::EvalModel::kSensor, false, 0, 4.0, 0.0},
        CrossModelCase{"battery_generous_disc_sh_dual",
                       phy::PropagationKind::kUnitDisc, 0.0, 0, 0, false,
                       app::EvalModel::kDualRadio, false, 0, 1e6, 1e6}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

/// Goodput is monotonically non-increasing in the extra-loss knob under
/// EVERY propagation model — the composed per-link PER only adds to the
/// sweep's Bernoulli loss (deterministic seeds; a small slack absorbs
/// MAC-retry luck).
class GoodputMonotone
    : public ::testing::TestWithParam<phy::PropagationKind> {};

TEST_P(GoodputMonotone, NonIncreasingInExtraLoss) {
  double previous = 2.0;
  for (const double loss : {0.0, 0.3, 0.6}) {
    auto cfg =
        app::ScenarioConfig::multi_hop(app::EvalModel::kSensor, 5, 50);
    cfg.duration = 250.0;
    cfg.seed = 77;
    cfg.propagation.kind = GetParam();
    cfg.frame_loss_prob = loss;
    const auto m = app::run_scenario(cfg);
    EXPECT_LE(m.goodput, previous + 0.05) << "loss " << loss;
    previous = m.goodput;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPropagationModels, GoodputMonotone,
                         ::testing::Values(
                             phy::PropagationKind::kUnitDisc,
                             phy::PropagationKind::kLogDistance,
                             phy::PropagationKind::kDistancePer),
                         [](const auto& param_info) {
                           return std::string(
                               phy::to_string(param_info.param));
                         });

/// Goodput is monotonically non-decreasing in capture-threshold
/// *leniency* under every propagation model: lowering the threshold can
/// only move overlapped frames from corrupt to clean (the SINR test is
/// pointwise monotone; the same MAC-luck slack as GoodputMonotone
/// absorbs retry feedback). Unit-disc collisions are equal-power ties at
/// any positive threshold, so that model bounds the null case.
class CaptureLeniencyMonotone
    : public ::testing::TestWithParam<phy::PropagationKind> {};

TEST_P(CaptureLeniencyMonotone, GoodputNonDecreasingAsThresholdDrops) {
  double previous = -1.0;
  for (const double threshold_db : {14.0, 8.0, 2.0}) {
    auto cfg =
        app::ScenarioConfig::multi_hop(app::EvalModel::kSensor, 5, 50);
    cfg.duration = 250.0;
    cfg.seed = 77;
    cfg.propagation.kind = GetParam();
    cfg.capture_enabled = true;
    cfg.capture_threshold_db = threshold_db;
    const auto m = app::run_scenario(cfg);
    EXPECT_GE(m.goodput, previous - 0.05) << "threshold " << threshold_db;
    // Conservation holds at every threshold: deliveries never exceed
    // frames × possible hearers.
    const int n = cfg.topology.node_count();
    EXPECT_EQ(m.chan_rx_starts, m.chan_rx_ends + m.chan_rx_live_at_end);
    EXPECT_LE(m.chan_rx_ends, m.chan_frames * (n - 1));
    previous = m.goodput;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPropagationModels, CaptureLeniencyMonotone,
                         ::testing::Values(
                             phy::PropagationKind::kUnitDisc,
                             phy::PropagationKind::kLogDistance,
                             phy::PropagationKind::kDistancePer),
                         [](const auto& param_info) {
                           return std::string(
                               phy::to_string(param_info.param));
                         });

// ------------------------------------------------ channel conservation ---

TEST(ChannelConservation, EveryHearerGetsExactlyOneEndPerFrame) {
  sim::Simulator sim;
  phy::Channel channel(sim, {{0, 0}, {30, 0}, {60, 0}, {90, 0}}, 45.0,
                       phy::Channel::Params{0.1}, 7);
  struct Counter : phy::ChannelListener {
    int starts = 0, ends = 0;
    void on_rx_start(std::uint64_t, const phy::Frame&,
                     util::Seconds) override {
      ++starts;
    }
    void on_rx_end(std::uint64_t, const phy::Frame&, bool) override {
      ++ends;
    }
  };
  Counter counters[4];
  for (net::NodeId i = 0; i < 4; ++i) channel.attach(i, &counters[i]);

  util::Xoshiro256 rng(5);
  int sent = 0;
  for (int i = 0; i < 500; ++i) {
    const double at = static_cast<double>(i) * 0.004;
    sim.schedule_at(at, [&channel, &rng, &sent] {
      const auto src = static_cast<net::NodeId>(rng.uniform_int(4));
      if (channel.busy_at(src)) return;  // half-duplex guard
      phy::Frame f;
      f.tx_node = src;
      f.rx_node = static_cast<net::NodeId>((src + 1) % 4);
      f.payload_bits = 256;
      f.header_bits = 88;
      net::Message m;
      m.src = src;
      m.dst = f.rx_node;
      m.body = net::DataPacket{src, f.rx_node, 1, 256, 0.0};
      f.message = net::make_message(std::move(m));
      channel.start_tx(src, f, 0.003);
      ++sent;
    });
  }
  sim.run();
  ASSERT_GT(sent, 100);
  int total_starts = 0, total_ends = 0;
  for (const auto& c : counters) {
    EXPECT_EQ(c.starts, c.ends);  // every start has exactly one end
    total_starts += c.starts;
    total_ends += c.ends;
  }
  // Channel stats account every per-hearer delivery exactly once.
  EXPECT_EQ(channel.stats().deliveries_clean +
                channel.stats().deliveries_corrupt,
            total_ends);
  EXPECT_EQ(channel.stats().frames, sent);
}

// ---------------------------------------------- shortcut gating e2e ------

TEST(ShortcutScenario, LearnsOnlyReachableNextHops) {
  // SH topology (40 m wifi): shortcuts would tempt nodes to jump to the
  // sink directly, which is out of range for everyone but its neighbours.
  // With the reachability gate, enabled shortcuts must never reduce
  // goodput below the no-shortcut baseline (they can only pick peers one
  // hop away, which is what routing already does on the grid).
  auto cfg = app::ScenarioConfig::single_hop(app::EvalModel::kDualRadio, 6,
                                             100);
  cfg.duration = 1500.0;
  cfg.seed = 11;
  const auto baseline = app::run_scenario(cfg);
  cfg.bcp.enable_shortcuts = true;
  const auto with_shortcuts = app::run_scenario(cfg);
  ASSERT_GT(baseline.delivered, 0);
  ASSERT_GT(with_shortcuts.delivered, 0);
  EXPECT_GT(with_shortcuts.goodput, 0.8 * baseline.goodput);
}

}  // namespace
}  // namespace bcp

// Unit tests: the hot-path primitives behind the allocation-free event
// loop — util::InlineFunction (inline callbacks), net::MessagePool /
// MessageRef (shared-immutable pooled payloads) and util::SlidingQueue.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <utility>

#include "net/message.hpp"
#include "net/message_ref.hpp"
#include "util/inline_function.hpp"
#include "util/sliding_queue.hpp"
#include "util/units.hpp"

namespace bcp {
namespace {

using util::InlineFunction;

TEST(InlineFunction, DefaultIsNull) {
  InlineFunction<void()> f;
  EXPECT_FALSE(f);
  EXPECT_TRUE(f == nullptr);
  EXPECT_TRUE(nullptr == f);
  EXPECT_FALSE(f != nullptr);
}

TEST(InlineFunction, InvokesSmallCapture) {
  int hits = 0;
  InlineFunction<void()> f = [&hits] { ++hits; };
  ASSERT_TRUE(f);
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, CaptureAtExactCapacityFits) {
  // Exactly kInlineFunctionCapacity bytes of captured state.
  struct Block {
    char data[util::kInlineFunctionCapacity];
  };
  Block b{};
  b.data[0] = 42;
  b.data[sizeof(b.data) - 1] = 7;
  InlineFunction<int()> f = [b] {
    return static_cast<int>(b.data[0]) +
           static_cast<int>(b.data[sizeof(b.data) - 1]);
  };
  EXPECT_EQ(f(), 49);
}

TEST(InlineFunction, OneByteCaptureAndCapacityOneWork) {
  char c = 3;
  InlineFunction<int(), 8> f = [c] { return c + 1; };
  EXPECT_EQ(f(), 4);
}

TEST(InlineFunction, ForwardsArgumentsAndReturn) {
  InlineFunction<int(int, int)> f = [](int a, int b) { return a * 10 + b; };
  EXPECT_EQ(f(3, 4), 34);
}

TEST(InlineFunction, MoveTransfersAndEmptiesSource) {
  int hits = 0;
  InlineFunction<void()> a = [&hits] { ++hits; };
  InlineFunction<void()> b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move) — documented state
  ASSERT_TRUE(b);
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFunction, DestructionReleasesCapturedState) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    InlineFunction<void()> f = [token = std::move(token)] { (void)token; };
    EXPECT_FALSE(watch.expired());  // alive inside the closure
  }
  EXPECT_TRUE(watch.expired());  // destructor ran the capture's destructor
}

TEST(InlineFunction, AssignNullptrReleasesCapturedState) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  InlineFunction<void()> f = [token = std::move(token)] { (void)token; };
  f = nullptr;
  EXPECT_FALSE(f);
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFunction, MoveAssignReplacesExistingCallable) {
  int first = 0;
  int second = 0;
  InlineFunction<void()> f = [&first] { ++first; };
  f = InlineFunction<void()>([&second] { ++second; });
  f();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(InlineFunction, MutableLambdaKeepsStateAcrossCalls) {
  InlineFunction<int()> f = [n = 0]() mutable { return ++n; };
  EXPECT_EQ(f(), 1);
  EXPECT_EQ(f(), 2);
}

// ---- MessagePool / MessageRef -------------------------------------------

net::Message data_message(util::Bits bits) {
  net::Message m;
  m.src = 1;
  m.dst = 2;
  m.body = net::DataPacket{1, 2, 1, bits, 0.0};
  return m;
}

TEST(MessagePool, RefsShareOnePayload) {
  net::MessageRef a = net::make_message(data_message(util::bytes(32)));
  net::MessageRef b = a;
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  EXPECT_EQ(a.get(), b.get());  // same pooled node, no copy
  EXPECT_EQ(b->size_bits(), util::bytes(32));
}

TEST(MessagePool, MoveLeavesSourceEmpty) {
  net::MessageRef a = net::make_message(data_message(util::bytes(32)));
  net::MessageRef b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b);
}

TEST(MessagePool, NodesAreRecycledNotLeaked) {
  net::MessagePool& pool = net::MessagePool::local();
  const std::size_t live0 = pool.outstanding();
  const net::Message proto = data_message(util::bytes(32));
  {
    net::MessageRef first = net::make_message(net::Message(proto));
    EXPECT_EQ(pool.outstanding(), live0 + 1);
  }
  EXPECT_EQ(pool.outstanding(), live0);
  const std::size_t pooled = pool.pooled();
  // Churn many make/release cycles: outstanding stays flat and the free
  // list never grows past its high-water mark — no per-message allocation.
  for (int i = 0; i < 1000; ++i) {
    net::MessageRef r = net::make_message(net::Message(proto));
    net::MessageRef shared = r;
    EXPECT_EQ(pool.outstanding(), live0 + 1);
  }
  EXPECT_EQ(pool.outstanding(), live0);
  EXPECT_EQ(pool.pooled(), pooled);
}

TEST(MessagePool, LastRefOfManyReleases) {
  net::MessagePool& pool = net::MessagePool::local();
  const std::size_t live0 = pool.outstanding();
  net::MessageRef a = net::make_message(data_message(util::bytes(64)));
  {
    net::MessageRef b = a;
    net::MessageRef c;
    c = b;
    EXPECT_EQ(pool.outstanding(), live0 + 1);
  }
  EXPECT_EQ(pool.outstanding(), live0 + 1);  // `a` still holds it
  a.reset();
  EXPECT_FALSE(a);
  EXPECT_EQ(pool.outstanding(), live0);
}

// ---- SlidingQueue -------------------------------------------------------

TEST(SlidingQueue, FifoOrderAcrossMixedPushPop) {
  util::SlidingQueue<int> q;
  EXPECT_TRUE(q.empty());
  for (int i = 0; i < 5; ++i) q.push_back(i);
  EXPECT_EQ(q.size(), 5u);
  EXPECT_EQ(q.front(), 0);
  q.pop_front();
  q.push_back(5);
  std::vector<int> seen;
  while (!q.empty()) {
    seen.push_back(q.front());
    q.pop_front();
  }
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(SlidingQueue, IterationCoversLiveRangeOldestFirst) {
  util::SlidingQueue<int> q;
  for (int i = 0; i < 8; ++i) q.push_back(i);
  for (int i = 0; i < 3; ++i) q.pop_front();
  std::vector<int> seen(q.begin(), q.end());
  EXPECT_EQ(seen, (std::vector<int>{3, 4, 5, 6, 7}));
}

TEST(SlidingQueue, SwapExchangesContents) {
  util::SlidingQueue<int> a;
  util::SlidingQueue<int> b;
  a.push_back(1);
  a.push_back(2);
  b.swap(a);
  EXPECT_TRUE(a.empty());
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b.front(), 1);
}

TEST(SlidingQueue, PopReleasesElementResourcesImmediately) {
  auto token = std::make_shared<int>(5);
  std::weak_ptr<int> watch = token;
  util::SlidingQueue<std::shared_ptr<int>> q;
  q.push_back(std::move(token));
  q.push_back(std::make_shared<int>(6));
  q.pop_front();  // must drop the element now, not at compaction time
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(*q.front(), 6);
}

}  // namespace
}  // namespace bcp

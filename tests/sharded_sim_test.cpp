// The parallel engine's contracts:
//   * ShardMap stripes are equal-population and ordered left to right;
//   * ShardedSimulator runs every shard to the horizon, phases parity
//     correctly, and propagates shard exceptions;
//   * boundary frames from an even stripe reach the adjacent odd stripe
//     with their EXACT original timing (the differential test diffs a
//     2-shard run against the single-queue Channel event for event), and
//     frames in every other direction arrive late by less than one window;
//   * a sharded run's metrics are a pure function of (config, shard
//     count): byte-identical across sim_threads and across repeats;
//   * the rx conservation law holds per-shard and summed;
//   * membership epochs: a node death (crash or battery depletion) or a
//     recovery is exact in the stripe that owns the node, and remote
//     stripes see it at most one window barrier late — differentially
//     pinned against the single-queue LinkState run;
//   * fault plans, finite batteries and lifetime routing run sharded with
//     thread-count-invariant metrics; only TDMA is still rejected.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "app/scenario.hpp"
#include "net/link_state.hpp"
#include "net/topology.hpp"
#include "phy/channel.hpp"
#include "phy/frame.hpp"
#include "phy/sharded_channel.hpp"
#include "sim/sharded_simulator.hpp"
#include "util/units.hpp"

namespace bcp {
namespace {

TEST(ShardMap, StripesAreBalancedAndOrderedLeftToRight) {
  std::vector<net::Position> positions;
  for (int i = 0; i < 12; ++i)
    positions.push_back({static_cast<double>(11 - i) * 10.0, 0.0});
  const phy::ShardMap map = phy::ShardMap::stripes(positions, 4);
  ASSERT_EQ(map.count, 4);
  for (int s = 0; s < 4; ++s) EXPECT_EQ(map.owned_count(s), 3);
  // Node i sits at x = (11-i)*10: the *rightmost* node is id 0, so stripe
  // numbers must decrease with id (stripes are ordered by x, not by id).
  for (int i = 0; i + 1 < 12; ++i)
    EXPECT_GE(map.shard_of[static_cast<std::size_t>(i)],
              map.shard_of[static_cast<std::size_t>(i + 1)]);
}

TEST(ShardMap, MoreShardsThanNodesClampsToNodeCount) {
  const std::vector<net::Position> positions{{0, 0}, {10, 0}, {20, 0}};
  const phy::ShardMap map = phy::ShardMap::stripes(positions, 8);
  EXPECT_EQ(map.count, 3);
  for (int s = 0; s < 3; ++s) EXPECT_EQ(map.owned_count(s), 1);
}

TEST(ShardedSimulator, RunsEveryShardToTheHorizonInWindows) {
  sim::ShardedSimulator::Params params;
  params.shards = 4;
  params.threads = 1;
  params.window = 0.5;
  sim::ShardedSimulator engine(params);
  std::vector<int> fired(4, 0);
  engine.for_each_shard([&](int s) {
    for (int k = 0; k < 5; ++k)
      engine.shard(s).schedule_at(0.3 + k, [&fired, s] { ++fired[s]; });
  });
  engine.run(10.0);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(fired[s], 5) << "shard " << s;
    EXPECT_DOUBLE_EQ(engine.shard(s).now(), 10.0);
  }
  EXPECT_EQ(engine.total_processed(), 20u);
}

TEST(ShardedSimulator, DrainHookSeesEveryWindowInOrder) {
  sim::ShardedSimulator::Params params;
  params.shards = 2;
  params.threads = 1;
  params.window = 1.0;
  sim::ShardedSimulator engine(params);
  std::vector<std::int64_t> windows;
  engine.set_drain(1, [&](std::int64_t w) { windows.push_back(w); });
  engine.run(3.0);
  // 3 real windows plus two settlement rounds at the horizon.
  ASSERT_EQ(windows.size(), 5u);
  for (std::size_t i = 0; i < windows.size(); ++i)
    EXPECT_EQ(windows[i], static_cast<std::int64_t>(i));
}

TEST(ShardedSimulator, ShardExceptionPropagatesToTheCaller) {
  sim::ShardedSimulator::Params params;
  params.shards = 2;
  params.threads = 1;
  sim::ShardedSimulator engine(params);
  EXPECT_THROW(engine.for_each_shard([](int s) {
    if (s == 1) throw std::runtime_error("boom");
  }),
               std::runtime_error);
}

// ---- Differential boundary-frame tests ------------------------------------

struct RxEvent {
  net::NodeId hearer;
  net::NodeId tx_node;
  double t_start;
  double t_end;
  bool clean;
};

/// Records every delivery at one node with the owning simulator's clock.
class Recorder final : public phy::ChannelListener {
 public:
  Recorder(sim::Simulator& sim, net::NodeId self,
           std::vector<RxEvent>& out)
      : sim_(sim), self_(self), out_(out) {}

  void on_rx_start(std::uint64_t id, const phy::Frame& frame,
                   util::Seconds) override {
    starts_.push_back({id, sim_.now()});
    (void)frame;
  }
  void on_rx_end(std::uint64_t id, const phy::Frame& frame,
                 bool clean) override {
    double t_start = -1;
    for (const auto& s : starts_)
      if (s.first == id) t_start = s.second;
    out_.push_back({self_, frame.tx_node, t_start, sim_.now(), clean});
  }

 private:
  sim::Simulator& sim_;
  net::NodeId self_;
  std::vector<RxEvent>& out_;
  std::vector<std::pair<std::uint64_t, double>> starts_;
};

/// Chain 0—1—2—3 at 10 m spacing, 15 m range; two stripes cut it between
/// nodes 1 and 2, so 1↔2 frames cross the boundary.
struct ChainFixture {
  std::vector<net::Position> positions{{0, 0}, {10, 0}, {20, 0}, {30, 0}};
  util::Metres range = 15.0;
};

std::vector<RxEvent> run_single(const ChainFixture& fx,
                                const std::vector<std::pair<net::NodeId, double>>& txs,
                                double horizon, double duration) {
  sim::Simulator sim;
  phy::Channel channel(sim, fx.positions, fx.range, phy::Channel::Params{},
                       99);
  std::vector<RxEvent> events;
  std::vector<std::unique_ptr<Recorder>> recorders;
  for (net::NodeId id = 0; id < 4; ++id) {
    recorders.push_back(std::make_unique<Recorder>(sim, id, events));
    channel.attach(id, recorders.back().get());
  }
  for (const auto& [src, at] : txs)
    sim.schedule_at(at, [&channel, src = src, duration] {
      phy::Frame frame;
      frame.tx_node = src;
      frame.rx_node = net::kBroadcastNode;
      channel.start_tx(src, frame, duration);
    });
  sim.run_until(horizon);
  return events;
}

std::vector<RxEvent> run_sharded(const ChainFixture& fx,
                                 const std::vector<std::pair<net::NodeId, double>>& txs,
                                 double horizon, double duration,
                                 double window) {
  sim::ShardedSimulator::Params params;
  params.shards = 2;
  params.threads = 1;
  params.window = window;
  sim::ShardedSimulator engine(params);
  const phy::ShardMap map = phy::ShardMap::stripes(fx.positions, 2);
  auto graph =
      std::make_shared<net::ConnectivityGraph>(fx.positions, fx.range);
  phy::ShardedMedium medium(engine, graph, map, phy::Channel::Params{}, 99);
  for (int s = 0; s < 2; ++s)
    engine.set_drain(s, [&medium, s](std::int64_t w) { medium.drain(s, w); });
  std::vector<RxEvent> events;
  std::vector<std::unique_ptr<Recorder>> recorders;
  engine.for_each_shard([&](int s) {
    for (net::NodeId id = 0; id < 4; ++id) {
      if (map.shard_of[static_cast<std::size_t>(id)] != s) continue;
      recorders.push_back(
          std::make_unique<Recorder>(engine.shard(s), id, events));
      medium.shard(s).attach(id, recorders.back().get());
    }
    for (const auto& [src, at] : txs) {
      if (map.shard_of[static_cast<std::size_t>(src)] != s) continue;
      engine.shard(s).schedule_at(
          at, [channel = &medium.shard(s), src = src, duration] {
            phy::Frame frame;
            frame.tx_node = src;
            frame.rx_node = net::kBroadcastNode;
            channel->start_tx(src, frame, duration);
          });
    }
  });
  engine.run(horizon);
  return events;
}

const RxEvent* find(const std::vector<RxEvent>& events, net::NodeId hearer,
                    net::NodeId tx_node) {
  for (const auto& e : events)
    if (e.hearer == hearer && e.tx_node == tx_node) return &e;
  return nullptr;
}

TEST(ShardedChannel, EvenToOddBoundaryFrameKeepsExactTiming) {
  const ChainFixture fx;
  // Node 1 (stripe 0, even) transmits mid-window; node 2 (stripe 1) hears
  // it across the boundary. Odd stripes run after even within a window,
  // so the replica arrives with its exact original [start, end).
  const std::vector<std::pair<net::NodeId, double>> txs{{1, 0.005}};
  const auto single = run_single(fx, txs, 0.1, 0.004);
  const auto sharded = run_sharded(fx, txs, 0.1, 0.004, 0.02);
  ASSERT_EQ(single.size(), 2u);   // hearers 0 and 2
  ASSERT_EQ(sharded.size(), 2u);
  for (const net::NodeId hearer : {net::NodeId{0}, net::NodeId{2}}) {
    const RxEvent* a = find(single, hearer, 1);
    const RxEvent* b = find(sharded, hearer, 1);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_DOUBLE_EQ(a->t_start, b->t_start) << "hearer " << hearer;
    EXPECT_DOUBLE_EQ(a->t_end, b->t_end) << "hearer " << hearer;
    EXPECT_EQ(a->clean, b->clean) << "hearer " << hearer;
    EXPECT_TRUE(b->clean);
  }
}

TEST(ShardedChannel, CrossBoundaryCollisionCorruptsBothFramesExactly) {
  const ChainFixture fx;
  // Node 1 (even stripe) and node 3 (odd stripe) overlap on the air; node
  // 2 hears both. Node 1's frame crosses even→odd with exact timing and
  // node 3's is local, so the all-overlaps-corrupt verdict at node 2 must
  // match the single-queue run event for event.
  const std::vector<std::pair<net::NodeId, double>> txs{{1, 0.005},
                                                       {3, 0.006}};
  const auto single = run_single(fx, txs, 0.1, 0.004);
  const auto sharded = run_sharded(fx, txs, 0.1, 0.004, 0.02);
  for (const net::NodeId tx : {net::NodeId{1}, net::NodeId{3}}) {
    const RxEvent* a = find(single, 2, tx);
    const RxEvent* b = find(sharded, 2, tx);
    ASSERT_NE(a, nullptr) << "tx " << tx;
    ASSERT_NE(b, nullptr) << "tx " << tx;
    EXPECT_DOUBLE_EQ(a->t_start, b->t_start) << "tx " << tx;
    EXPECT_DOUBLE_EQ(a->t_end, b->t_end) << "tx " << tx;
    EXPECT_FALSE(a->clean) << "tx " << tx;
    EXPECT_FALSE(b->clean) << "tx " << tx;
  }
}

TEST(ShardedChannel, OddToEvenBoundaryFrameArrivesLateByLessThanOneWindow) {
  const ChainFixture fx;
  const double window = 0.02;
  // Node 2 (odd stripe) transmits at 0.005; node 1 (even stripe) already
  // ran past that instant, so the replica lands at the start of stripe
  // 0's next phase — late, but by less than one exchange window, and
  // still delivered clean (nothing else was on the air).
  const std::vector<std::pair<net::NodeId, double>> txs{{2, 0.005}};
  const auto sharded = run_sharded(fx, txs, 0.1, 0.004, window);
  const RxEvent* late = find(sharded, 1, 2);
  ASSERT_NE(late, nullptr);
  EXPECT_TRUE(late->clean);
  EXPECT_GE(late->t_start, 0.005);
  EXPECT_LT(late->t_start, 0.005 + 2 * window);
  // The same frame's delivery inside its own stripe is exactly on time.
  const RxEvent* local = find(sharded, 3, 2);
  ASSERT_NE(local, nullptr);
  EXPECT_DOUBLE_EQ(local->t_start, 0.005);
  EXPECT_DOUBLE_EQ(local->t_end, 0.009);
}

TEST(ShardedChannel, ConservationLawHoldsAcrossPartitions) {
  const ChainFixture fx;
  const std::vector<std::pair<net::NodeId, double>> txs{
      {0, 0.001}, {1, 0.005}, {2, 0.013}, {3, 0.030}};
  sim::ShardedSimulator::Params params;
  params.shards = 2;
  params.threads = 1;
  params.window = 0.02;
  sim::ShardedSimulator engine(params);
  const phy::ShardMap map = phy::ShardMap::stripes(fx.positions, 2);
  auto graph =
      std::make_shared<net::ConnectivityGraph>(fx.positions, fx.range);
  phy::ShardedMedium medium(engine, graph, map, phy::Channel::Params{}, 7);
  for (int s = 0; s < 2; ++s)
    engine.set_drain(s, [&medium, s](std::int64_t w) { medium.drain(s, w); });
  engine.for_each_shard([&](int s) {
    for (const auto& [src, at] : txs) {
      if (map.shard_of[static_cast<std::size_t>(src)] != s) continue;
      engine.shard(s).schedule_at(
          at, [channel = &medium.shard(s), src = src] {
            phy::Frame frame;
            frame.tx_node = src;
            frame.rx_node = net::kBroadcastNode;
            channel->start_tx(src, frame, 0.004);
          });
    }
  });
  engine.run(0.1);
  const phy::Channel::Stats stats = medium.total_stats();
  EXPECT_EQ(stats.frames, 4);
  EXPECT_GT(medium.boundary_exports(), 0);
  EXPECT_EQ(stats.rx_starts, stats.deliveries_clean +
                                 stats.deliveries_corrupt +
                                 medium.total_live_arrivals());
  EXPECT_EQ(medium.total_live_arrivals(), 0);
}

// ---- Membership-epoch differential tests -----------------------------------

/// One scripted membership flip: `node` goes down (a crash and a battery
/// death are the same kNodeDown delta) or comes back up at `at`.
struct MembershipFlip {
  double at;
  net::NodeId node;
  bool up;
};

std::vector<RxEvent> run_single_membership(
    const ChainFixture& fx,
    const std::vector<std::pair<net::NodeId, double>>& txs,
    const std::vector<MembershipFlip>& flips, double horizon,
    double duration) {
  sim::Simulator sim;
  phy::Channel channel(sim, fx.positions, fx.range, phy::Channel::Params{},
                       99);
  net::LinkState links(4);
  channel.set_link_state(&links);
  std::vector<RxEvent> events;
  std::vector<std::unique_ptr<Recorder>> recorders;
  for (net::NodeId id = 0; id < 4; ++id) {
    recorders.push_back(std::make_unique<Recorder>(sim, id, events));
    channel.attach(id, recorders.back().get());
  }
  for (const auto& f : flips)
    sim.schedule_at(f.at, [&links, f] { links.set_node_up(f.node, f.up); });
  for (const auto& [src, at] : txs)
    sim.schedule_at(at, [&channel, src = src, duration] {
      phy::Frame frame;
      frame.tx_node = src;
      frame.rx_node = net::kBroadcastNode;
      channel.start_tx(src, frame, duration);
    });
  sim.run_until(horizon);
  return events;
}

/// The sharded counterpart wires the full epoch protocol by hand — one
/// LinkState replica per stripe, the owning stripe flips its replica at
/// the exact event instant and queues the delta, and the barrier hook
/// broadcasts the sorted batch to every replica — exactly what
/// run_scenario_sharded does, minus the nodes. Also asserts the rx
/// conservation law per channel partition before returning.
std::vector<RxEvent> run_sharded_membership(
    const ChainFixture& fx,
    const std::vector<std::pair<net::NodeId, double>>& txs,
    const std::vector<MembershipFlip>& flips, double horizon,
    double duration, double window) {
  sim::ShardedSimulator::Params params;
  params.shards = 2;
  params.threads = 1;
  params.window = window;
  sim::ShardedSimulator engine(params);
  const phy::ShardMap map = phy::ShardMap::stripes(fx.positions, 2);
  auto graph =
      std::make_shared<net::ConnectivityGraph>(fx.positions, fx.range);
  phy::ShardedMedium medium(engine, graph, map, phy::Channel::Params{}, 99);
  std::vector<net::LinkState> replicas(2, net::LinkState(4));
  std::vector<std::vector<net::MembershipDelta>> pending(2);
  for (int s = 0; s < 2; ++s) {
    medium.shard(s).set_link_state(&replicas[static_cast<std::size_t>(s)]);
    engine.set_drain(s, [&medium, s](std::int64_t w) { medium.drain(s, w); });
  }
  engine.set_barrier_hook([&replicas, &pending](std::int64_t, util::Seconds) {
    std::vector<net::MembershipDelta> batch;
    for (auto& q : pending) {
      batch.insert(batch.end(), q.begin(), q.end());
      q.clear();
    }
    std::sort(batch.begin(), batch.end(), net::MembershipDelta::before);
    for (const auto& d : batch)
      for (auto& r : replicas) r.apply(d);
  });
  std::vector<RxEvent> events;
  std::vector<std::unique_ptr<Recorder>> recorders;
  engine.for_each_shard([&](int s) {
    for (net::NodeId id = 0; id < 4; ++id) {
      if (map.shard_of[static_cast<std::size_t>(id)] != s) continue;
      recorders.push_back(
          std::make_unique<Recorder>(engine.shard(s), id, events));
      medium.shard(s).attach(id, recorders.back().get());
    }
    for (const auto& f : flips) {
      if (map.shard_of[static_cast<std::size_t>(f.node)] != s) continue;
      engine.shard(s).schedule_at(f.at, [&replicas, &pending, f, s] {
        replicas[static_cast<std::size_t>(s)].set_node_up(f.node, f.up);
        net::MembershipDelta d;
        d.time = f.at;
        d.shard = s;
        d.node = f.node;
        d.kind = f.up ? net::MembershipDelta::Kind::kNodeUp
                      : net::MembershipDelta::Kind::kNodeDown;
        pending[static_cast<std::size_t>(s)].push_back(d);
      });
    }
    for (const auto& [src, at] : txs) {
      if (map.shard_of[static_cast<std::size_t>(src)] != s) continue;
      engine.shard(s).schedule_at(
          at, [channel = &medium.shard(s), src = src, duration] {
            phy::Frame frame;
            frame.tx_node = src;
            frame.rx_node = net::kBroadcastNode;
            channel->start_tx(src, frame, duration);
          });
    }
  });
  engine.run(horizon);
  for (int s = 0; s < 2; ++s) {
    const phy::Channel::Stats st = medium.shard(s).stats();
    EXPECT_EQ(st.rx_starts, st.deliveries_clean + st.deliveries_corrupt +
                                medium.shard(s).live_arrivals())
        << "conservation violated in partition " << s;
  }
  return events;
}

void expect_same_events(std::vector<RxEvent> a, std::vector<RxEvent> b) {
  const auto order = [](const RxEvent& x, const RxEvent& y) {
    return std::tie(x.hearer, x.tx_node, x.t_start) <
           std::tie(y.hearer, y.tx_node, y.t_start);
  };
  std::sort(a.begin(), a.end(), order);
  std::sort(b.begin(), b.end(), order);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].hearer, b[i].hearer) << "event " << i;
    EXPECT_EQ(a[i].tx_node, b[i].tx_node) << "event " << i;
    EXPECT_DOUBLE_EQ(a[i].t_start, b[i].t_start) << "event " << i;
    EXPECT_DOUBLE_EQ(a[i].t_end, b[i].t_end) << "event " << i;
    EXPECT_EQ(a[i].clean, b[i].clean) << "event " << i;
  }
}

TEST(ShardedMembership, OwningStripeSilencesADeathAtTheExactInstant) {
  const ChainFixture fx;
  // Node 2 (odd stripe) dies at t = 0.010. Frames around the death:
  //   * node 1 at 0.001: ends (0.005) before the death — node 2 hears it
  //     across the boundary with exact timing;
  //   * node 3 at 0.012 (node 2's own stripe): the owning replica went
  //     down at the exact instant — silence, no window granularity;
  //   * node 2 itself at 0.015: a dead transmitter reaches nobody;
  //   * node 1 at 0.025 (next window): stripe 0 learned the death at the
  //     0.02 barrier, so the frame is not even exported.
  // The sharded event log must match the single-queue LinkState run
  // event for event.
  const std::vector<std::pair<net::NodeId, double>> txs{
      {1, 0.001}, {3, 0.012}, {2, 0.015}, {1, 0.025}};
  const std::vector<MembershipFlip> flips{{0.010, 2, false}};
  const auto single = run_single_membership(fx, txs, flips, 0.1, 0.004);
  const auto sharded =
      run_sharded_membership(fx, txs, flips, 0.1, 0.004, 0.02);
  // Survivors: hearers 0 and 2 of the 0.001 frame, hearer 0 of the 0.025
  // frame. Everything sent to or from the dead node is silence.
  ASSERT_EQ(single.size(), 3u);
  EXPECT_NE(find(single, 2, 1), nullptr);
  expect_same_events(single, sharded);
}

TEST(ShardedMembership, RemoteStripeSeesARecoveryAtMostOneWindowLate) {
  const ChainFixture fx;
  const double window = 0.02;
  // Node 2 dies at 0.001 and recovers at 0.030 (window [0.02, 0.04)).
  // Node 1 (stripe 0) transmits at 0.032: the single-queue run delivers —
  // node 2 is already back — but stripe 0's replica only learns the
  // recovery at the 0.04 barrier, so the sharded run misses this one
  // frame. One window later (0.045) both engines deliver with exact
  // timing: remote staleness is bounded by one window, never unbounded.
  const std::vector<MembershipFlip> flips{{0.001, 2, false},
                                          {0.030, 2, true}};
  const std::vector<std::pair<net::NodeId, double>> txs{{1, 0.032},
                                                        {1, 0.045}};
  const auto single = run_single_membership(fx, txs, flips, 0.1, 0.004);
  const auto sharded =
      run_sharded_membership(fx, txs, flips, 0.1, 0.004, window);
  const auto rx_at_2 = [](const std::vector<RxEvent>& events) {
    std::vector<double> starts;
    for (const auto& e : events)
      if (e.hearer == 2 && e.tx_node == 1) starts.push_back(e.t_start);
    std::sort(starts.begin(), starts.end());
    return starts;
  };
  const auto single_rx = rx_at_2(single);
  ASSERT_EQ(single_rx.size(), 2u);
  EXPECT_DOUBLE_EQ(single_rx[0], 0.032);
  EXPECT_DOUBLE_EQ(single_rx[1], 0.045);
  const auto sharded_rx = rx_at_2(sharded);
  ASSERT_EQ(sharded_rx.size(), 1u);
  EXPECT_DOUBLE_EQ(sharded_rx[0], 0.045);
  // The missed frame left within one window of the recovery instant —
  // the staleness bound the epoch protocol promises.
  EXPECT_LT(0.032 - 0.030, window);
}

// ---- Whole-scenario contracts ----------------------------------------------

app::ScenarioConfig sharded_config(int shards, int threads) {
  // burst_packets = 10: at 0.2 Kbps a sender fills a burst every ~13 s,
  // so a 120 s run exercises many full wake-up/transfer cycles.
  app::ScenarioConfig config = app::ScenarioConfig::single_hop(
      app::EvalModel::kDualRadio, /*senders=*/6, /*burst_packets=*/10);
  config.duration = 120.0;
  config.shards = shards;
  config.sim_threads = threads;
  return config;
}

void expect_same_metrics(const app::RunMetrics& a, const app::RunMetrics& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dropped_buffer, b.dropped_buffer);
  EXPECT_EQ(a.dropped_queue, b.dropped_queue);
  EXPECT_EQ(a.dropped_mac, b.dropped_mac);
  EXPECT_EQ(a.mac_tx_attempts, b.mac_tx_attempts);
  EXPECT_EQ(a.mac_tx_failed, b.mac_tx_failed);
  EXPECT_EQ(a.bcp_wakeups, b.bcp_wakeups);
  EXPECT_EQ(a.bcp_sender_sessions, b.bcp_sender_sessions);
  EXPECT_EQ(a.chan_frames, b.chan_frames);
  EXPECT_EQ(a.chan_rx_starts, b.chan_rx_starts);
  EXPECT_EQ(a.chan_rx_ends, b.chan_rx_ends);
  EXPECT_EQ(a.boundary_frames, b.boundary_frames);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.fault_node_crashes, b.fault_node_crashes);
  EXPECT_EQ(a.fault_node_recoveries, b.fault_node_recoveries);
  EXPECT_EQ(a.fault_recoveries_refused, b.fault_recoveries_refused);
  EXPECT_EQ(a.fault_link_downs, b.fault_link_downs);
  EXPECT_EQ(a.fault_link_ups, b.fault_link_ups);
  EXPECT_EQ(a.route_rebuilds, b.route_rebuilds);
  EXPECT_EQ(a.battery_deaths, b.battery_deaths);
  EXPECT_EQ(a.time_to_first_death, b.time_to_first_death);
  EXPECT_EQ(a.time_to_sink_partition, b.time_to_sink_partition);
  EXPECT_EQ(a.delivered_bits_until_first_death,
            b.delivered_bits_until_first_death);
  EXPECT_EQ(a.delivered_bits_until_partition,
            b.delivered_bits_until_partition);
  EXPECT_EQ(a.battery_max_drawn_fraction, b.battery_max_drawn_fraction);
  ASSERT_EQ(a.shard_events.size(), b.shard_events.size());
  for (std::size_t i = 0; i < a.shard_events.size(); ++i)
    EXPECT_EQ(a.shard_events[i], b.shard_events[i]) << "shard " << i;
  // Bit-equality, not tolerance: the determinism contract is exact.
  EXPECT_EQ(a.goodput, b.goodput);
  EXPECT_EQ(a.mean_delay, b.mean_delay);
  EXPECT_EQ(a.normalized_energy, b.normalized_energy);
  EXPECT_EQ(a.wifi_on_seconds, b.wifi_on_seconds);
}

TEST(ShardedScenario, MetricsAreIdenticalAcrossWorkerThreadCounts) {
  const app::RunMetrics inline_run =
      app::run_scenario(sharded_config(4, /*threads=*/1));
  const app::RunMetrics threaded_run =
      app::run_scenario(sharded_config(4, /*threads=*/2));
  expect_same_metrics(inline_run, threaded_run);
  EXPECT_GT(inline_run.delivered, 0);
  EXPECT_GT(inline_run.boundary_frames, 0);
}

TEST(ShardedScenario, RepeatRunsAreIdentical) {
  const app::RunMetrics a = app::run_scenario(sharded_config(3, 0));
  const app::RunMetrics b = app::run_scenario(sharded_config(3, 0));
  expect_same_metrics(a, b);
}

TEST(ShardedScenario, ShardEventCountsSumToTotalAndConservationHolds) {
  const app::RunMetrics m = app::run_scenario(sharded_config(4, 1));
  ASSERT_EQ(m.shard_events.size(), 4u);
  std::uint64_t sum = 0;
  for (const std::uint64_t e : m.shard_events) {
    EXPECT_GT(e, 0u);
    sum += e;
  }
  EXPECT_EQ(sum, m.events_processed);
  EXPECT_EQ(m.chan_rx_starts, m.chan_rx_ends + m.chan_rx_live_at_end);
}

TEST(ShardedScenario, SensorModelRunsSharded) {
  app::ScenarioConfig config = app::ScenarioConfig::single_hop(
      app::EvalModel::kSensor, 6, 100);
  config.duration = 120.0;
  config.shards = 3;
  config.sim_threads = 1;
  const app::RunMetrics m = app::run_scenario(config);
  EXPECT_GT(m.delivered, 0);
  EXPECT_EQ(m.chan_rx_starts, m.chan_rx_ends + m.chan_rx_live_at_end);
}

// ---- Fault/churn and batteries on the sharded engine -----------------------

TEST(ShardedScenario, FaultChurnRunsShardedAndIsThreadCountInvariant) {
  app::ScenarioConfig churn = sharded_config(4, 1);
  churn.faults.node_crashes = 3;
  churn.faults.link_flaps = 2;
  const app::RunMetrics inline_run = app::run_scenario(churn);
  churn.sim_threads = 2;
  const app::RunMetrics threaded_run = app::run_scenario(churn);
  expect_same_metrics(inline_run, threaded_run);
  EXPECT_EQ(inline_run.fault_node_crashes, 3);
  EXPECT_EQ(inline_run.fault_link_downs, 2);
  EXPECT_GT(inline_run.delivered, 0);
  EXPECT_GT(inline_run.route_rebuilds, 0);
  EXPECT_EQ(inline_run.chan_rx_starts,
            inline_run.chan_rx_ends + inline_run.chan_rx_live_at_end);
}

TEST(ShardedScenario, ChurnPlusBatteriesRunShardedWithDeathsAccounted) {
  app::ScenarioConfig config = sharded_config(4, 1);
  config.faults.node_crashes = 2;
  config.faults.link_flaps = 2;
  config.battery.enabled = true;
  // A dual-radio node's battery holds sensor_j + wifi_j. 4 J at the
  // busiest nodes' ~60 mW draw runs dry around 65 s of the 120 s run,
  // so deaths are guaranteed.
  config.battery.sensor_initial_j = 2.0;
  config.battery.wifi_initial_j = 2.0;
  const app::RunMetrics inline_run = app::run_scenario(config);
  config.sim_threads = 2;
  const app::RunMetrics threaded_run = app::run_scenario(config);
  expect_same_metrics(inline_run, threaded_run);
  EXPECT_GT(inline_run.battery_deaths, 0);
  EXPECT_GT(inline_run.time_to_first_death, 0);
  EXPECT_LE(inline_run.time_to_first_death, config.duration);
  EXPECT_GE(inline_run.battery_max_drawn_fraction, 1.0);
  EXPECT_EQ(inline_run.chan_rx_starts,
            inline_run.chan_rx_ends + inline_run.chan_rx_live_at_end);
}

TEST(ShardedScenario, LifetimeRoutingRunsSharded) {
  app::ScenarioConfig config = sharded_config(3, 1);
  config.battery.enabled = true;  // lifetime routing requires a battery
  config.route_policy = net::RoutePolicy::kLifetimeAware;
  const app::RunMetrics inline_run = app::run_scenario(config);
  config.sim_threads = 2;
  const app::RunMetrics threaded_run = app::run_scenario(config);
  expect_same_metrics(inline_run, threaded_run);
  EXPECT_GT(inline_run.delivered, 0);
  // The coordinator's reroute tick touches every replica on the
  // reroute_period grid, so routing rebuilds keep happening mid-run.
  EXPECT_GT(inline_run.route_rebuilds, 0);
}

// A battery death is a kNodeDown membership delta, so the engines must
// agree exactly when the depletion instant is traffic-independent: with a
// battery that dies before the first burst ever transmits, every node
// depletes by pure idle draw at capacity/idle_power in BOTH engines.
TEST(ShardedScenario, IdleOnlyBatteryDeathMatchesSingleQueueExactly) {
  app::ScenarioConfig config = sharded_config(2, 1);
  config.duration = 30.0;
  config.battery.enabled = true;
  // Dual-radio capacity = sensor_j + wifi_j = 0.15 J: 5 s of Mica's
  // 30 mW idle listen, gone long before the first ~13 s burst transmits.
  config.battery.sensor_initial_j = 0.1;
  config.battery.wifi_initial_j = 0.05;
  const app::RunMetrics sharded = app::run_scenario(config);
  config.shards = 1;  // dispatches to the historical single-queue engine
  const app::RunMetrics single = app::run_scenario(config);
  EXPECT_GT(sharded.battery_deaths, 0);
  EXPECT_EQ(sharded.battery_deaths, single.battery_deaths);
  EXPECT_EQ(sharded.time_to_first_death, single.time_to_first_death);
  EXPECT_EQ(sharded.time_to_sink_partition, single.time_to_sink_partition);
  EXPECT_EQ(sharded.delivered_bits_until_first_death,
            single.delivered_bits_until_first_death);
  EXPECT_EQ(sharded.delivered_bits_until_partition,
            single.delivered_bits_until_partition);
}

// ---- Stripe-local node state (the id-mapping memory model) -----------------

TEST(ShardMap, LocalIdsAreContiguousAscendingAndInvertOwned) {
  // Positions deliberately scrambled relative to ids so stripes interleave.
  std::vector<net::Position> positions;
  for (int i = 0; i < 23; ++i)
    positions.push_back({static_cast<double>((i * 7) % 23) * 5.0, 0.0});
  const phy::ShardMap map = phy::ShardMap::stripes(positions, 5);
  ASSERT_EQ(map.count, 5);
  ASSERT_EQ(map.local_of.size(), 23u);
  int total = 0;
  for (int s = 0; s < map.count; ++s) {
    const std::vector<net::NodeId>& ids = map.owned_nodes(s);
    ASSERT_EQ(static_cast<int>(ids.size()), map.owned_count(s));
    total += map.owned_count(s);
    for (std::size_t l = 0; l < ids.size(); ++l) {
      const auto g = static_cast<std::size_t>(ids[l]);
      EXPECT_EQ(map.shard_of[g], s);
      // owned[s][local_of[g]] == g: local ids are the dense inverse.
      EXPECT_EQ(map.local_of[g], static_cast<std::int32_t>(l));
      if (l > 0) {
        EXPECT_LT(ids[l - 1], ids[l]);  // ascending global order
      }
    }
  }
  EXPECT_EQ(total, 23);  // every node owned by exactly one stripe
}

TEST(ShardMap, HalosAreTheRemoteNeighborsOfOwnedNodes) {
  const ChainFixture fx;  // 0—1—2—3; two stripes cut between 1 and 2
  const phy::ShardMap map = phy::ShardMap::stripes(fx.positions, 2);
  const net::ConnectivityGraph graph(fx.positions, fx.range);
  const auto halos = map.halos({&graph});
  ASSERT_EQ(halos.size(), 2u);
  // Stripe 0 owns {0,1}; its only cross-boundary edge is 1—2, so the halo
  // is exactly {2} (and symmetrically {1} for stripe 1). Nodes 0 and 3
  // never appear: no owned node of the other stripe can hear them.
  EXPECT_EQ(halos[0], (std::vector<net::NodeId>{2}));
  EXPECT_EQ(halos[1], (std::vector<net::NodeId>{1}));
}

TEST(ShardMap, DomainAssignsOwnedSlotsDenseThenHalo) {
  const ChainFixture fx;
  const phy::ShardMap map = phy::ShardMap::stripes(fx.positions, 2);
  const net::ConnectivityGraph graph(fx.positions, fx.range);
  const auto halos = map.halos({&graph});
  const auto domain = map.domain(0, halos[0]);
  ASSERT_NE(domain, nullptr);
  EXPECT_EQ(domain->shard, 0);
  EXPECT_EQ(domain->owned, 2);
  EXPECT_EQ(domain->dense_count(), 3);  // owned {0,1} + halo {2}
  EXPECT_EQ(domain->dense_slot(0), 0);
  EXPECT_EQ(domain->dense_slot(1), 1);
  EXPECT_EQ(domain->dense_slot(2), 2);   // first halo slot
  EXPECT_EQ(domain->dense_slot(3), -1);  // outside owned + halo
}

TEST(ShardedChannel, PartitionVectorsAreStripeLocal) {
  const ChainFixture fx;
  sim::ShardedSimulator::Params params;
  params.shards = 2;
  params.threads = 1;
  params.window = 0.02;
  sim::ShardedSimulator engine(params);
  const phy::ShardMap map = phy::ShardMap::stripes(fx.positions, 2);
  auto graph =
      std::make_shared<net::ConnectivityGraph>(fx.positions, fx.range);
  phy::ShardedMedium medium(engine, graph, map, phy::Channel::Params{}, 99);
  // Every partition's per-node channel arrays are sized by its stripe's
  // population, not the global one — the O(n/shards) memory claim.
  for (int s = 0; s < 2; ++s)
    EXPECT_EQ(medium.shard(s).node_slots(),
              static_cast<std::size_t>(map.owned_count(s)))
        << "shard " << s;
}

TEST(LinkStateReplica, StripeLocalDenseSizeIsOwnedPlusHalo) {
  const ChainFixture fx;
  const phy::ShardMap map = phy::ShardMap::stripes(fx.positions, 2);
  const net::ConnectivityGraph graph(fx.positions, fx.range);
  const auto halos = map.halos({&graph});
  const net::LinkState replica(map.domain(0, halos[0]));
  EXPECT_TRUE(replica.stripe_local());
  EXPECT_EQ(replica.dense_size(), 3u);  // 2 owned + 1 halo, not n = 4
  EXPECT_EQ(replica.node_count(), 4);   // queries still span the world
  const net::LinkState dense(4);
  EXPECT_FALSE(dense.stripe_local());
  EXPECT_EQ(dense.dense_size(), 4u);
}

TEST(LinkStateReplica, StripeLocalAnswersMatchDenseUnderChurn) {
  const ChainFixture fx;
  const phy::ShardMap map = phy::ShardMap::stripes(fx.positions, 2);
  const net::ConnectivityGraph graph(fx.positions, fx.range);
  const auto halos = map.halos({&graph});
  net::LinkState stripe(map.domain(0, halos[0]));
  net::LinkState dense(4);
  // Mutation sequence spanning owned (0,1), halo (2) and out-of-domain (3)
  // ids, with idempotent repeats: every answer and every revision bump
  // must match the dense layout exactly.
  const auto check = [&] {
    EXPECT_EQ(stripe.all_up(), dense.all_up());
    EXPECT_EQ(stripe.down_node_count(), dense.down_node_count());
    EXPECT_EQ(stripe.revision(), dense.revision());
    for (net::NodeId v = 0; v < 4; ++v)
      EXPECT_EQ(stripe.node_up(v), dense.node_up(v)) << "node " << v;
    for (net::NodeId a = 0; a < 4; ++a)
      for (net::NodeId b = 0; b < 4; ++b)
        if (a != b) {
          EXPECT_EQ(stripe.link_up(a, b), dense.link_up(a, b))
              << a << "-" << b;
        }
  };
  const std::vector<std::pair<net::NodeId, bool>> flips{
      {1, false}, {1, false},  // repeat: no revision bump in either
      {3, false},              // out-of-domain → sparse down-set
      {2, false},              // halo slot
      {1, true},  {3, true},  {2, true}, {0, false}, {0, true}};
  check();
  for (const auto& [node, up] : flips) {
    stripe.set_node_up(node, up);
    dense.set_node_up(node, up);
    check();
  }
  stripe.set_link_up(1, 2, false);
  dense.set_link_up(1, 2, false);
  check();
  stripe.set_link_up(1, 2, true);
  dense.set_link_up(1, 2, true);
  check();
}

TEST(ShardedScenario, ShardCountAboveNodeCountIsRejected) {
  app::ScenarioConfig config = app::ScenarioConfig::single_hop(
      app::EvalModel::kSensor, 3, 100);
  config.shards = config.topology.node_count() + 1;
  try {
    app::run_scenario(config);
    FAIL() << "shards > nodes must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(
                  "shard count must not exceed the node count"),
              std::string::npos)
        << e.what();
  }
}

// ---- Differential goldens across the id-mapping refactor -------------------
//
// These values were captured on the globally-sized (pre stripe-local)
// partitions; the stripe-local refactor must reproduce every one of them
// bit for bit. A mismatch means the id translation changed behavior, not
// just layout.

app::ScenarioConfig golden_grid_config(int nodes, int shards, double duration,
                                       int senders) {
  app::ScenarioConfig cfg = app::ScenarioConfig::single_hop(
      app::EvalModel::kDualRadio, senders, /*burst_packets=*/10);
  net::TopologySpec spec;
  spec.kind = net::TopologyKind::kGrid;
  spec.nodes = nodes;
  spec.seed = 1;
  int side = 1;
  while (side * side < nodes) ++side;
  spec.grid_side = side;
  spec.area = 40.0 * (side - 1);
  cfg.topology = spec;
  cfg.rate_bps = 2000.0;
  cfg.duration = duration;
  cfg.seed = 1;
  cfg.shards = shards;
  cfg.sim_threads = 1;
  return cfg;
}

TEST(ShardedGolden, Grid900Nodes4ShardsIsBytePinned) {
  const app::RunMetrics m =
      app::run_scenario(golden_grid_config(900, 4, 20.0, 10));
  EXPECT_EQ(m.generated, 1564);
  EXPECT_EQ(m.delivered, 432);
  EXPECT_EQ(m.events_processed, 117125u);
  EXPECT_EQ(m.boundary_frames, 7118);
  EXPECT_EQ(m.goodput, 0.27621483375959077);
  EXPECT_EQ(m.mean_delay, 5.3365775142110161);
  EXPECT_EQ(m.normalized_energy, 1.097699034764013);
  EXPECT_EQ(m.sensor_energy.tx, 3.7665600872727643);
  EXPECT_EQ(m.wifi_energy.full(), 116.40174674995447);
}

TEST(ShardedGolden, Grid10000Nodes8ShardsIsBytePinned) {
  const app::RunMetrics m =
      app::run_scenario(golden_grid_config(10000, 8, 12.0, 10));
  EXPECT_EQ(m.generated, 938);
  EXPECT_EQ(m.delivered, 70);
  EXPECT_EQ(m.events_processed, 136855u);
  EXPECT_EQ(m.boundary_frames, 6358);
  EXPECT_EQ(m.goodput, 0.074626865671641784);
  EXPECT_EQ(m.mean_delay, 5.666617315016957);
  EXPECT_EQ(m.normalized_energy, 6.8851241550321571);
  EXPECT_EQ(m.sensor_energy.tx, 4.7077937394711435);
  EXPECT_EQ(m.wifi_energy.full(), 117.02122515845767);
}

TEST(ShardedGolden, Churn900Nodes4ShardsWithBatteriesIsBytePinned) {
  app::ScenarioConfig cfg = app::ScenarioConfig::multi_hop(
      app::EvalModel::kDualRadio, 10, /*burst_packets=*/10);
  net::TopologySpec spec;
  spec.kind = net::TopologyKind::kGrid;
  spec.nodes = 900;
  spec.seed = 1;
  spec.grid_side = 30;
  spec.area = 40.0 * 29;
  cfg.topology = spec;
  cfg.rate_bps = 2000.0;
  cfg.duration = 60.0;
  cfg.seed = 1;
  cfg.shards = 4;
  cfg.sim_threads = 1;
  cfg.faults.node_crashes = 6;
  cfg.faults.seed = 7;
  cfg.battery.enabled = true;
  cfg.battery.sensor_initial_j = 2.0;
  cfg.battery.wifi_initial_j = 2.0;
  const app::RunMetrics m = app::run_scenario(cfg);
  EXPECT_EQ(m.generated, 4689);
  EXPECT_EQ(m.delivered, 130);
  EXPECT_EQ(m.events_processed, 42143u);
  EXPECT_EQ(m.boundary_frames, 2411);
  EXPECT_EQ(m.fault_node_crashes, 6);
  EXPECT_EQ(m.fault_node_recoveries, 6);
  EXPECT_EQ(m.battery_deaths, 9);
  EXPECT_EQ(m.time_to_first_death, 7.3244032790697666);
  EXPECT_EQ(m.route_rebuilds, 119);
  EXPECT_EQ(m.goodput, 0.027724461505651526);
  EXPECT_EQ(m.normalized_energy, 1.2236367146638714);
}

TEST(ShardedScenario, TdmaIsRejected) {
  app::ScenarioConfig config = app::ScenarioConfig::single_hop(
      app::EvalModel::kSensor, 6, 100);
  config.shards = 2;
  config.sensor_mac.family = mac::MacFamily::kTdma;
  EXPECT_THROW(app::run_scenario(config), std::invalid_argument);
}

}  // namespace
}  // namespace bcp

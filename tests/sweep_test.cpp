// Unit tests: the parallel sweep engine (grid enumeration, deterministic
// fan-out, result aggregation, scenario registry).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "app/scenario_registry.hpp"
#include "app/sweep.hpp"
#include "stats/result_sink.hpp"

namespace bcp::app {
namespace {

TEST(SweepGrid, EnumeratesLastAxisFastest) {
  SweepGrid grid;
  grid.axis("a", {1, 2}).axis("b", {10, 20, 30});
  ASSERT_EQ(grid.size(), 6u);
  // Expected order: (1,10) (1,20) (1,30) (2,10) (2,20) (2,30).
  const double expect[][2] = {{1, 10}, {1, 20}, {1, 30},
                              {2, 10}, {2, 20}, {2, 30}};
  for (std::size_t i = 0; i < 6; ++i) {
    const SweepPoint p = grid.point(i);
    EXPECT_EQ(p.index(), i);
    EXPECT_DOUBLE_EQ(p.get("a"), expect[i][0]);
    EXPECT_DOUBLE_EQ(p.get("b"), expect[i][1]);
  }
}

TEST(SweepGrid, IndexOfInvertsEnumeration) {
  SweepGrid grid;
  grid.axis_ints("x", {1, 2, 3}).axis_ints("y", {4, 5}).constant("z", 9);
  for (std::size_t xi = 0; xi < 3; ++xi)
    for (std::size_t yi = 0; yi < 2; ++yi) {
      const std::size_t i = grid.index_of({xi, yi, 0});
      const SweepPoint p = grid.point(i);
      EXPECT_DOUBLE_EQ(p.get("x"), 1.0 + static_cast<double>(xi));
      EXPECT_DOUBLE_EQ(p.get("y"), 4.0 + static_cast<double>(yi));
      EXPECT_DOUBLE_EQ(p.get("z"), 9.0);
    }
}

TEST(SweepGrid, PointAccessors) {
  SweepGrid grid;
  grid.axis("rate", {2.5});
  const SweepPoint p = grid.point(0);
  EXPECT_DOUBLE_EQ(p.get("rate"), 2.5);
  EXPECT_DOUBLE_EQ(p.get_or("missing", 7.0), 7.0);
  EXPECT_EQ(p.get_int("rate"), 3);  // rounds to nearest
  EXPECT_THROW(p.get("missing"), std::invalid_argument);
}

TEST(SweepGrid, RejectsBadDefinitions) {
  SweepGrid grid;
  grid.axis("a", {1});
  EXPECT_THROW(grid.axis("a", {2}), std::invalid_argument);  // duplicate
  EXPECT_THROW(grid.axis("b", {}), std::invalid_argument);   // empty
  EXPECT_EQ(SweepGrid().size(), 0u);
}

stats::ResultSink::Metrics synthetic_metrics(const SweepJob& job) {
  const double x = job.point.get("x");
  const double y = job.point.get("y");
  return {{"sum", x + y + static_cast<double>(job.seed)},
          {"prod", x * y * static_cast<double>(job.replication + 1)}};
}

TEST(SweepRunner, OutputIsByteIdenticalAcrossThreadCounts) {
  // >= 100 points, as the sweep engine's contract demands.
  SweepGrid grid;
  std::vector<int> xs, ys;
  for (int i = 0; i < 12; ++i) xs.push_back(i);
  for (int i = 0; i < 10; ++i) ys.push_back(100 + i);
  grid.axis_ints("x", xs).axis_ints("y", ys);
  ASSERT_GE(grid.size(), 100u);

  SweepOptions base;
  base.replications = 3;
  base.base_seed = 42;

  std::string reference;
  for (const int threads : {1, 2, 4, 7}) {
    SweepOptions opts = base;
    opts.threads = threads;
    const stats::ResultSink sink =
        SweepRunner(opts).run(grid, synthetic_metrics);
    EXPECT_EQ(sink.point_count(), grid.size());
    const std::string json = sink.to_json("determinism");
    if (reference.empty())
      reference = json;
    else
      EXPECT_EQ(json, reference) << "thread count " << threads
                                 << " changed the output";
  }
}

TEST(SweepRunner, UsesRequestedWorkerCount) {
  SweepGrid grid;
  grid.axis_ints("x", {1, 2, 3, 4}).axis_ints("y", {1, 2, 3, 4});

  std::mutex mu;
  std::set<std::thread::id> seen;
  SweepOptions opts;
  opts.threads = 4;
  opts.replications = 4;
  SweepRunner(opts).run(grid, [&](const SweepJob& job) {
    {
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(std::this_thread::get_id());
    }
    return synthetic_metrics(job);
  });
  // The pool is bounded by the request (a fast worker may drain the queue
  // before its peers start, so only the upper bound is exact).
  EXPECT_GE(seen.size(), 1u);
  EXPECT_LE(seen.size(), 4u);
  EXPECT_EQ(SweepRunner(opts).effective_threads(64), 4);
  // Thread count never exceeds the job count.
  EXPECT_EQ(SweepRunner(opts).effective_threads(2), 2);
}

TEST(SweepRunner, ReplicationSeedsClimbFromBase) {
  SweepGrid grid;
  grid.axis_ints("x", {0, 1}).constant("y", 0);
  SweepOptions opts;
  opts.replications = 3;
  opts.base_seed = 100;
  opts.threads = 1;
  std::vector<std::uint64_t> seeds;
  SweepRunner(opts).run(grid, [&](const SweepJob& job) {
    seeds.push_back(job.seed);
    return synthetic_metrics(job);
  });
  ASSERT_EQ(seeds.size(), 6u);
  // Per point: replications 0,1,2 -> seeds 100,101,102.
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{100, 101, 102, 100, 101,
                                               102}));
}

TEST(SweepRunner, PropagatesJobExceptions) {
  SweepGrid grid;
  grid.axis_ints("x", {0, 1, 2, 3}).constant("y", 0);
  SweepOptions opts;
  opts.threads = 2;
  EXPECT_THROW(SweepRunner(opts).run(grid,
                                     [](const SweepJob& job)
                                         -> stats::ResultSink::Metrics {
                                       if (job.point.get_int("x") == 2)
                                         throw std::runtime_error("boom");
                                       return synthetic_metrics(job);
                                     }),
               std::runtime_error);
}

TEST(SweepRunner, AggregatesReplicationsPerPoint) {
  SweepGrid grid;
  grid.axis("x", {1.0}).axis("y", {2.0});
  SweepOptions opts;
  opts.replications = 5;
  opts.base_seed = 0;
  const stats::ResultSink sink =
      SweepRunner(opts).run(grid, [](const SweepJob& job) {
        return stats::ResultSink::Metrics{
            {"value", static_cast<double>(job.seed)}};
      });
  const stats::Summary& s = sink.metric(0, "value");
  EXPECT_EQ(s.count(), 5);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);  // mean of 0..4
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(ResultSink, GuardsMetricSchemaAcrossReplications) {
  stats::ResultSink sink;
  sink.add(0, {{"x", 1}}, {{"a", 1.0}, {"b", 2.0}});
  EXPECT_THROW(sink.add(0, {{"x", 1}}, {{"a", 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(sink.add(0, {{"x", 1}}, {{"a", 1.0}, {"c", 2.0}}),
               std::invalid_argument);
  EXPECT_THROW(sink.metric(0, "nope"), std::invalid_argument);
  EXPECT_THROW(sink.metric(9, "a"), std::invalid_argument);
}

TEST(ResultSink, GuardsSchemaAcrossPoints) {
  stats::ResultSink sink;
  sink.add(0, {{"x", 1}}, {{"a", 1.0}});
  // A second point must carry the same param/metric names — the table
  // header comes from the first point.
  EXPECT_THROW(sink.add(1, {{"x", 2}}, {{"b", 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(sink.add(1, {{"y", 2}}, {{"a", 1.0}}),
               std::invalid_argument);
  sink.add(1, {{"x", 2}}, {{"a", 3.0}});
  EXPECT_EQ(sink.point_count(), 2u);
}

TEST(ResultSink, JsonCarriesLabelsParamsAndStats) {
  stats::ResultSink sink;
  sink.add(0, {{"senders", 5}}, {{"goodput", 0.5}});
  sink.add(0, {{"senders", 5}}, {{"goodput", 1.0}});
  sink.set_label(0, "DualRadio-500");
  const std::string json = sink.to_json("demo");
  EXPECT_NE(json.find("\"bench\": \"demo\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"DualRadio-500\""), std::string::npos);
  EXPECT_NE(json.find("\"senders\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"mean\": 0.75"), std::string::npos);
  EXPECT_NE(json.find("\"n\": 2"), std::string::npos);
}

TEST(ScenarioRegistry, BuiltinCoversTheEvaluationMatrix) {
  const ScenarioRegistry& r = ScenarioRegistry::builtin();
  for (const char* name :
       {"sh/sensor", "sh/wifi", "sh/dual", "mh/sensor", "mh/wifi",
        "mh/dual", "sh/wifi-duty", "mh/wifi-duty", "mh/dual-flush-high",
        "mh/dual-fallback-low", "mh/dual-shortcuts", "sh/dual-lucent2",
        "sh/dual-cabletron", "sharded-sh/dual", "sharded-mh/dual",
        "sharded-mh/sensor"})
    EXPECT_TRUE(r.contains(name)) << name;
  EXPECT_FALSE(r.contains("nope"));
  EXPECT_THROW(r.make("nope", SweepPoint(0, {{"senders", 5}})),
               std::invalid_argument);
}

TEST(ScenarioRegistry, PlacementVariantsBuildConnectedTopologies) {
  const ScenarioRegistry& r = ScenarioRegistry::builtin();
  for (const char* placement : {"rand", "cluster", "line"})
    for (const char* hops : {"sh", "mh"})
      for (const char* model : {"sensor", "wifi", "dual"}) {
        const std::string name = std::string(hops) + "-" + placement + "/" +
                                 model;
        ASSERT_TRUE(r.contains(name)) << name;
        const ScenarioConfig cfg = r.make(name, SweepPoint(0, {{"senders", 5}}));
        EXPECT_NE(cfg.topology.kind, net::TopologyKind::kGrid) << name;
        EXPECT_EQ(cfg.topology.node_count(), 36) << name;
      }
  // Placement axes are honoured.
  const ScenarioConfig cfg = r.make(
      "sh-line/dual",
      SweepPoint(0, {{"senders", 5}, {"nodes", 20}, {"topo_seed", 3}}));
  EXPECT_EQ(cfg.topology.kind, net::TopologyKind::kLineCorridor);
  EXPECT_EQ(cfg.topology.node_count(), 20);
  // The line is connected by construction, so the seed is untouched.
  EXPECT_EQ(cfg.topology.seed, 3u);
}

TEST(ResultSinkMeta, EmittedInJsonWhenSet) {
  stats::ResultSink sink;
  sink.add(0, {{"x", 1}}, {{"m", 2.0}});
  // No meta: no "meta" key (the historical byte-identical format).
  EXPECT_EQ(sink.to_json("plain").find("\"meta\""), std::string::npos);
  sink.set_meta("topology", "grid");
  sink.set_meta("node_count", 36.0);
  sink.set_meta("seed", 1.0);
  const std::string json = sink.to_json("demo");
  EXPECT_NE(json.find("\"meta\": {\"topology\": \"grid\", "
                      "\"node_count\": 36, \"seed\": 1}"),
            std::string::npos)
      << json;
  // Overwrite keeps insertion order and the latest value.
  sink.set_meta("topology", "rand");
  EXPECT_NE(sink.to_json("demo").find("\"topology\": \"rand\", "
                                      "\"node_count\": 36"),
            std::string::npos);
}

TEST(ResultSinkMeta, ShardedExportsCarryPeakRss) {
  // Any sharded meta key triggers the automatic peak-RSS sample — the
  // memory-model audit trail every sharded BENCH_*.json must carry.
  for (const char* key : {"shards", "headline_shards", "compare_shards"}) {
    stats::ResultSink sink;
    sink.add(0, {{"x", 1}}, {{"m", 2.0}});
    sink.set_meta(key, 4.0);
    const std::string json = sink.to_json("demo");
    EXPECT_NE(json.find("\"peak_rss_mib\": "), std::string::npos)
        << key << ": " << json;
  }
  // An explicitly set value wins over the automatic sample.
  stats::ResultSink sink;
  sink.add(0, {{"x", 1}}, {{"m", 2.0}});
  sink.set_meta("shards", 4.0);
  sink.set_meta("peak_rss_mib", 123.5);
  const std::string json = sink.to_json("demo");
  EXPECT_NE(json.find("\"peak_rss_mib\": 123.5"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"peak_rss_mib\": 123.5"),
            json.rfind("\"peak_rss_mib\""));
  // Unsharded meta exports exactly the entries that were set.
  stats::ResultSink plain;
  plain.add(0, {{"x", 1}}, {{"m", 2.0}});
  plain.set_meta("seed", 1.0);
  EXPECT_EQ(plain.to_json("demo").find("peak_rss_mib"), std::string::npos);
}

TEST(ScenarioRegistry, BuildersReadPointParams) {
  const ScenarioRegistry& r = ScenarioRegistry::builtin();
  const SweepPoint p(0, {{"senders", 15},
                         {"burst", 1000},
                         {"rate_bps", 2000},
                         {"duration", 750},
                         {"loss", 0.05}});
  const ScenarioConfig cfg = r.make("mh/dual", p);
  EXPECT_EQ(cfg.model, EvalModel::kDualRadio);
  EXPECT_EQ(cfg.n_senders, 15);
  EXPECT_EQ(cfg.burst_packets, 1000);
  EXPECT_DOUBLE_EQ(cfg.rate_bps, 2000);
  EXPECT_DOUBLE_EQ(cfg.duration, 750);
  EXPECT_DOUBLE_EQ(cfg.frame_loss_prob, 0.05);

  const ScenarioConfig duty =
      r.make("mh/wifi-duty", SweepPoint(0, {{"senders", 5}, {"duty", 0.1}}));
  EXPECT_EQ(duty.model, EvalModel::kWifiDutyCycled);
  EXPECT_DOUBLE_EQ(duty.duty_cycle, 0.1);

  const ScenarioConfig flush = r.make(
      "mh/dual-flush-high",
      SweepPoint(0, {{"senders", 5}, {"deadline_s", 30}}));
  EXPECT_EQ(flush.bcp.delay_policy, core::DelayPolicy::kFlushHigh);
  EXPECT_DOUBLE_EQ(flush.bcp.max_buffering_delay, 30);

  const ScenarioConfig sharded = r.make(
      "sharded-mh/dual", SweepPoint(0, {{"senders", 5},
                                        {"shards", 6},
                                        {"sim_threads", 2},
                                        {"nodes", 100}}));
  EXPECT_EQ(sharded.shards, 6);
  EXPECT_EQ(sharded.sim_threads, 2);
  EXPECT_EQ(sharded.topology.node_count(), 100);
  EXPECT_EQ(sharded.topology.kind, net::TopologyKind::kGrid);
}

TEST(ScenarioRegistry, SweepFnRunsScenariosDeterministically) {
  // A real (tiny) simulation sweep: identical output at 1 and 4 threads.
  SweepGrid grid;
  grid.constant("variant", 0)
      .axis_ints("senders", {3, 5})
      .constant("burst", 10)
      .constant("duration", 30);
  const SweepFn fn =
      scenario_sweep_fn(ScenarioRegistry::builtin(), {"mh/dual"});

  SweepOptions opts;
  opts.replications = 2;
  opts.threads = 1;
  const std::string j1 =
      SweepRunner(opts).run(grid, fn).to_json("scenario");
  opts.threads = 4;
  const std::string j4 =
      SweepRunner(opts).run(grid, fn).to_json("scenario");
  EXPECT_EQ(j1, j4);
  EXPECT_NE(j1.find("goodput"), std::string::npos);
}

}  // namespace
}  // namespace bcp::app

// Field-coverage test for detail::merge_metrics, the sharded engine's
// per-shard metric fold. Together with the sizeof(RunMetrics)
// static_assert at the definition it forms a tripwire: a new RunMetrics
// field cannot ship without a merge rule (the assert fires) and the rule
// cannot be wrong silently (this test pins the semantics of every field —
// counters sum, time-to-first-* take the earliest non-sentinel value, the
// drawn fraction takes the max, per-shard vectors concatenate, derived
// ratios are left for finalize_metrics).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "app/scenario.hpp"
#include "app/scenario_detail.hpp"

namespace bcp {
namespace {

/// A RunMetrics with every field set to a distinct value derived from
/// `base`, so a dropped or cross-wired merge rule shows up as a wrong sum.
app::RunMetrics filled(std::int64_t base) {
  app::RunMetrics m;
  std::int64_t v = base;
  m.generated = ++v;
  m.delivered = ++v;
  m.dropped_buffer = ++v;
  m.dropped_queue = ++v;
  m.dropped_mac = ++v;
  m.dropped_no_route = ++v;
  m.dropped_node_down = ++v;
  m.goodput = static_cast<double>(++v);
  m.mean_delay = static_cast<double>(++v);
  m.sensor_energy.tx = static_cast<double>(++v);
  m.sensor_energy.rx = static_cast<double>(++v);
  m.sensor_energy.overhear = static_cast<double>(++v);
  m.sensor_energy.idle = static_cast<double>(++v);
  m.sensor_energy.wakeup = static_cast<double>(++v);
  m.wifi_energy.tx = static_cast<double>(++v);
  m.wifi_energy.rx = static_cast<double>(++v);
  m.wifi_energy.overhear = static_cast<double>(++v);
  m.wifi_energy.idle = static_cast<double>(++v);
  m.wifi_energy.wakeup = static_cast<double>(++v);
  m.normalized_energy = static_cast<double>(++v);
  m.normalized_energy_sensor_ideal = static_cast<double>(++v);
  m.normalized_energy_sensor_header = static_cast<double>(++v);
  m.mac_tx_attempts = ++v;
  m.mac_tx_failed = ++v;
  m.bcp_wakeups = ++v;
  m.bcp_handshakes_failed = ++v;
  m.bcp_sender_sessions = ++v;
  m.bcp_receiver_timeouts = ++v;
  m.wifi_wakeup_transitions = ++v;
  m.wifi_on_seconds = static_cast<double>(++v);
  m.events_processed = static_cast<std::uint64_t>(++v);
  m.fault_node_crashes = ++v;
  m.fault_node_recoveries = ++v;
  m.fault_recoveries_refused = ++v;
  m.fault_link_downs = ++v;
  m.fault_link_ups = ++v;
  m.route_rebuilds = ++v;
  m.bcp_packets_lost_to_crash = ++v;
  m.mac_crash_drops = ++v;
  m.chan_frames = ++v;
  m.chan_rx_starts = ++v;
  m.chan_rx_ends = ++v;
  m.chan_rx_live_at_end = ++v;
  m.tdma_beacons_sent = ++v;
  m.tdma_beacons_heard = ++v;
  m.tdma_slots_skipped = ++v;
  m.battery_deaths = ++v;
  m.time_to_first_death = static_cast<double>(++v);
  m.time_to_sink_partition = static_cast<double>(++v);
  m.delivered_bits_until_first_death = ++v;
  m.delivered_bits_until_partition = ++v;
  m.battery_max_drawn_fraction = static_cast<double>(++v);
  m.shard_events = {static_cast<std::uint64_t>(++v)};
  m.boundary_frames = ++v;
  return m;
}

TEST(MergeMetrics, EveryFieldHasTheRightRule) {
  const app::RunMetrics a = filled(100);
  const app::RunMetrics b = filled(1000);
  app::RunMetrics total = a;
  app::detail::merge_metrics(total, b);

  // Traffic counters sum.
  EXPECT_EQ(total.generated, a.generated + b.generated);
  EXPECT_EQ(total.delivered, a.delivered + b.delivered);
  EXPECT_EQ(total.dropped_buffer, a.dropped_buffer + b.dropped_buffer);
  EXPECT_EQ(total.dropped_queue, a.dropped_queue + b.dropped_queue);
  EXPECT_EQ(total.dropped_mac, a.dropped_mac + b.dropped_mac);
  EXPECT_EQ(total.dropped_no_route, a.dropped_no_route + b.dropped_no_route);
  EXPECT_EQ(total.dropped_node_down,
            a.dropped_node_down + b.dropped_node_down);

  // Derived ratios are NOT merged — finalize_metrics recomputes them from
  // the merged sums, so the fold must leave them alone.
  EXPECT_EQ(total.goodput, a.goodput);
  EXPECT_EQ(total.mean_delay, a.mean_delay);
  EXPECT_EQ(total.normalized_energy, a.normalized_energy);
  EXPECT_EQ(total.normalized_energy_sensor_ideal,
            a.normalized_energy_sensor_ideal);
  EXPECT_EQ(total.normalized_energy_sensor_header,
            a.normalized_energy_sensor_header);

  // Energy components sum per radio class.
  EXPECT_EQ(total.sensor_energy.tx, a.sensor_energy.tx + b.sensor_energy.tx);
  EXPECT_EQ(total.sensor_energy.rx, a.sensor_energy.rx + b.sensor_energy.rx);
  EXPECT_EQ(total.sensor_energy.overhear,
            a.sensor_energy.overhear + b.sensor_energy.overhear);
  EXPECT_EQ(total.sensor_energy.idle,
            a.sensor_energy.idle + b.sensor_energy.idle);
  EXPECT_EQ(total.sensor_energy.wakeup,
            a.sensor_energy.wakeup + b.sensor_energy.wakeup);
  EXPECT_EQ(total.wifi_energy.tx, a.wifi_energy.tx + b.wifi_energy.tx);
  EXPECT_EQ(total.wifi_energy.rx, a.wifi_energy.rx + b.wifi_energy.rx);
  EXPECT_EQ(total.wifi_energy.overhear,
            a.wifi_energy.overhear + b.wifi_energy.overhear);
  EXPECT_EQ(total.wifi_energy.idle, a.wifi_energy.idle + b.wifi_energy.idle);
  EXPECT_EQ(total.wifi_energy.wakeup,
            a.wifi_energy.wakeup + b.wifi_energy.wakeup);

  // Protocol/MAC counters sum.
  EXPECT_EQ(total.mac_tx_attempts, a.mac_tx_attempts + b.mac_tx_attempts);
  EXPECT_EQ(total.mac_tx_failed, a.mac_tx_failed + b.mac_tx_failed);
  EXPECT_EQ(total.bcp_wakeups, a.bcp_wakeups + b.bcp_wakeups);
  EXPECT_EQ(total.bcp_handshakes_failed,
            a.bcp_handshakes_failed + b.bcp_handshakes_failed);
  EXPECT_EQ(total.bcp_sender_sessions,
            a.bcp_sender_sessions + b.bcp_sender_sessions);
  EXPECT_EQ(total.bcp_receiver_timeouts,
            a.bcp_receiver_timeouts + b.bcp_receiver_timeouts);
  EXPECT_EQ(total.wifi_wakeup_transitions,
            a.wifi_wakeup_transitions + b.wifi_wakeup_transitions);
  EXPECT_EQ(total.wifi_on_seconds, a.wifi_on_seconds + b.wifi_on_seconds);
  EXPECT_EQ(total.events_processed, a.events_processed + b.events_processed);

  // Fault/churn counters sum — each fault event is counted by exactly
  // one shard.
  EXPECT_EQ(total.fault_node_crashes,
            a.fault_node_crashes + b.fault_node_crashes);
  EXPECT_EQ(total.fault_node_recoveries,
            a.fault_node_recoveries + b.fault_node_recoveries);
  EXPECT_EQ(total.fault_recoveries_refused,
            a.fault_recoveries_refused + b.fault_recoveries_refused);
  EXPECT_EQ(total.fault_link_downs, a.fault_link_downs + b.fault_link_downs);
  EXPECT_EQ(total.fault_link_ups, a.fault_link_ups + b.fault_link_ups);
  EXPECT_EQ(total.route_rebuilds, a.route_rebuilds + b.route_rebuilds);
  EXPECT_EQ(total.bcp_packets_lost_to_crash,
            a.bcp_packets_lost_to_crash + b.bcp_packets_lost_to_crash);
  EXPECT_EQ(total.mac_crash_drops, a.mac_crash_drops + b.mac_crash_drops);

  // Channel conservation counters sum (the law holds per partition and
  // over the sum).
  EXPECT_EQ(total.chan_frames, a.chan_frames + b.chan_frames);
  EXPECT_EQ(total.chan_rx_starts, a.chan_rx_starts + b.chan_rx_starts);
  EXPECT_EQ(total.chan_rx_ends, a.chan_rx_ends + b.chan_rx_ends);
  EXPECT_EQ(total.chan_rx_live_at_end,
            a.chan_rx_live_at_end + b.chan_rx_live_at_end);

  // TDMA schedule health sums.
  EXPECT_EQ(total.tdma_beacons_sent,
            a.tdma_beacons_sent + b.tdma_beacons_sent);
  EXPECT_EQ(total.tdma_beacons_heard,
            a.tdma_beacons_heard + b.tdma_beacons_heard);
  EXPECT_EQ(total.tdma_slots_skipped,
            a.tdma_slots_skipped + b.tdma_slots_skipped);

  // Lifetime: deaths and until-bits sum, time-to-first-* take the
  // earliest value, the drawn fraction takes the max.
  EXPECT_EQ(total.battery_deaths, a.battery_deaths + b.battery_deaths);
  EXPECT_EQ(total.time_to_first_death, a.time_to_first_death);
  EXPECT_EQ(total.time_to_sink_partition, a.time_to_sink_partition);
  EXPECT_EQ(total.delivered_bits_until_first_death,
            a.delivered_bits_until_first_death +
                b.delivered_bits_until_first_death);
  EXPECT_EQ(total.delivered_bits_until_partition,
            a.delivered_bits_until_partition +
                b.delivered_bits_until_partition);
  EXPECT_EQ(total.battery_max_drawn_fraction, b.battery_max_drawn_fraction);

  // Sharded visibility: per-shard event vectors concatenate in fold
  // order, boundary exports sum.
  ASSERT_EQ(total.shard_events.size(), 2u);
  EXPECT_EQ(total.shard_events[0], a.shard_events[0]);
  EXPECT_EQ(total.shard_events[1], b.shard_events[0]);
  EXPECT_EQ(total.boundary_frames, a.boundary_frames + b.boundary_frames);
}

TEST(MergeMetrics, TimeToFirstSentinelsNeverWin) {
  // -1 means "never happened": it must lose to any real value in either
  // direction and survive only when both sides are sentinels.
  app::RunMetrics total;
  app::RunMetrics part;
  part.time_to_first_death = 42.0;
  part.time_to_sink_partition = 43.0;
  app::detail::merge_metrics(total, part);
  EXPECT_EQ(total.time_to_first_death, 42.0);
  EXPECT_EQ(total.time_to_sink_partition, 43.0);

  app::RunMetrics sentinel_part;
  app::detail::merge_metrics(total, sentinel_part);
  EXPECT_EQ(total.time_to_first_death, 42.0);
  EXPECT_EQ(total.time_to_sink_partition, 43.0);

  app::RunMetrics earlier;
  earlier.time_to_first_death = 7.0;
  earlier.time_to_sink_partition = 8.0;
  app::detail::merge_metrics(total, earlier);
  EXPECT_EQ(total.time_to_first_death, 7.0);
  EXPECT_EQ(total.time_to_sink_partition, 8.0);

  app::RunMetrics never_total;
  app::RunMetrics never_part;
  app::detail::merge_metrics(never_total, never_part);
  EXPECT_EQ(never_total.time_to_first_death, -1.0);
  EXPECT_EQ(never_total.time_to_sink_partition, -1.0);
}

}  // namespace
}  // namespace bcp
